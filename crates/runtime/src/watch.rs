//! Leader-change notifications: the Ω oracle as a subscribable service.
//!
//! Downstream systems rarely poll `leader()` in a loop — they want to know
//! *when leadership changes* (to fail over a primary, re-route clients,
//! fence the old leader). [`LeaderWatch`] runs a small observer thread over
//! a [`Cluster`] and delivers [`LeaderEvent`]s to any number of
//! subscribers.
//!
//! Events are deliberately *edge-triggered and conflated per subscriber
//! queue*: Ω's contract allows arbitrary flapping before stabilization, so
//! consumers must treat every event as "current belief", not as truth.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use omega_registers::sync::Mutex;
use omega_registers::ProcessId;

use crate::cluster::Cluster;

/// A leadership change observed on a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderEvent {
    /// The previous agreed leader, if there was one.
    pub previous: Option<ProcessId>,
    /// The new agreed leader, or `None` if agreement dissolved.
    pub current: Option<ProcessId>,
}

struct Subscriber {
    queue: Arc<Mutex<Vec<LeaderEvent>>>,
}

/// Observes a cluster and notifies subscribers of leadership changes.
///
/// "The leader" is defined as in the Ω contract: the identity that *all*
/// correct nodes currently report; while they disagree, the watch reports
/// `None`.
pub struct LeaderWatch {
    subscribers: Arc<Mutex<Vec<Subscriber>>>,
    current: Arc<Mutex<Option<ProcessId>>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LeaderWatch {
    /// Starts observing `cluster`, polling its cached estimates every
    /// `poll` interval.
    #[must_use]
    pub fn start(cluster: Arc<Cluster>, poll: Duration) -> Self {
        let subscribers: Arc<Mutex<Vec<Subscriber>>> = Arc::new(Mutex::new(Vec::new()));
        let current: Arc<Mutex<Option<ProcessId>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));

        let thread = {
            let subscribers = Arc::clone(&subscribers);
            let current = Arc::clone(&current);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("leader-watch".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let agreed = Self::agreed_leader(&cluster);
                        let mut held = current.lock();
                        if *held != agreed {
                            let event = LeaderEvent {
                                previous: *held,
                                current: agreed,
                            };
                            *held = agreed;
                            drop(held);
                            for sub in subscribers.lock().iter() {
                                sub.queue.lock().push(event);
                            }
                        } else {
                            drop(held);
                        }
                        std::thread::sleep(poll);
                    }
                })
                .expect("spawn leader-watch thread")
        };
        LeaderWatch {
            subscribers,
            current,
            stop,
            thread: Some(thread),
        }
    }

    /// The identity all correct nodes currently agree on, if any.
    fn agreed_leader(cluster: &Cluster) -> Option<ProcessId> {
        let correct = cluster.correct();
        let mut estimates = correct.iter().map(|pid| cluster.node(pid).cached_leader());
        let first = estimates.next().flatten()?;
        if correct.contains(first) && estimates.all(|e| e == Some(first)) {
            Some(first)
        } else {
            None
        }
    }

    /// The watch's current view of the agreed leader.
    #[must_use]
    pub fn current(&self) -> Option<ProcessId> {
        *self.current.lock()
    }

    /// Subscribes to future leadership changes.
    #[must_use]
    pub fn subscribe(&self) -> LeaderEvents {
        let queue = Arc::new(Mutex::new(Vec::new()));
        self.subscribers.lock().push(Subscriber {
            queue: Arc::clone(&queue),
        });
        LeaderEvents { queue }
    }

    /// Blocks until the watch reports an agreed leader, up to `timeout`.
    #[must_use]
    pub fn await_leader(&self, timeout: Duration) -> Option<ProcessId> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(leader) = self.current() {
                return Some(leader);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the observer thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LeaderWatch {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for LeaderWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaderWatch")
            .field("current", &self.current())
            .field("subscribers", &self.subscribers.lock().len())
            .finish()
    }
}

/// A subscriber's stream of leadership events.
#[derive(Debug)]
pub struct LeaderEvents {
    queue: Arc<Mutex<Vec<LeaderEvent>>>,
}

impl LeaderEvents {
    /// Drains and returns all events delivered since the last call.
    #[must_use]
    pub fn drain(&self) -> Vec<LeaderEvent> {
        std::mem::take(&mut *self.queue.lock())
    }

    /// Blocks until an event whose `current` satisfies `pred` arrives, up
    /// to `timeout`; returns it (earlier events are consumed too).
    #[must_use]
    pub fn await_event(
        &self,
        timeout: Duration,
        pred: impl Fn(&LeaderEvent) -> bool,
    ) -> Option<LeaderEvent> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            for event in self.drain() {
                if pred(&event) {
                    return Some(event);
                }
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use omega_core::OmegaVariant;

    fn fast() -> NodeConfig {
        NodeConfig {
            step_interval: Duration::from_micros(200),
            tick: Duration::from_micros(300),
        }
    }

    #[test]
    fn watch_reports_election_and_failover() {
        let cluster = Arc::new(Cluster::start(OmegaVariant::Alg1, 3, fast()));
        let mut watch = LeaderWatch::start(Arc::clone(&cluster), Duration::from_millis(1));
        let events = watch.subscribe();

        let first = watch
            .await_leader(Duration::from_secs(10))
            .expect("watch sees the election");
        assert!(cluster.correct().contains(first));

        // The subscriber saw the rise of the first leader.
        let rise = events
            .await_event(Duration::from_secs(2), |e| e.current == Some(first))
            .expect("election event delivered");
        assert_eq!(rise.current, Some(first));

        // Crash it: the subscriber must observe a change away from `first`.
        cluster.crash(first);
        let fall = events
            .await_event(Duration::from_secs(10), |e| {
                e.previous == Some(first) && e.current != Some(first)
            })
            .expect("failover event delivered");
        assert_ne!(fall.current, Some(first));

        // And eventually a new agreed leader.
        let second = events
            .await_event(Duration::from_secs(10), |e| {
                e.current.is_some() && e.current != Some(first)
            })
            .map(|e| e.current.unwrap())
            .or_else(|| watch.await_leader(Duration::from_secs(10)));
        let second = second.expect("new leader observed");
        assert_ne!(second, first);

        watch.shutdown();
        match Arc::try_unwrap(cluster) {
            Ok(c) => c.shutdown(),
            Err(_) => panic!("cluster still referenced"),
        }
    }

    #[test]
    fn multiple_subscribers_get_the_same_events() {
        let cluster = Arc::new(Cluster::start(OmegaVariant::Alg1, 2, fast()));
        let watch = LeaderWatch::start(Arc::clone(&cluster), Duration::from_millis(1));
        let a = watch.subscribe();
        let b = watch.subscribe();
        let leader = watch.await_leader(Duration::from_secs(10)).expect("elects");
        let ea = a.await_event(Duration::from_secs(2), |e| e.current == Some(leader));
        let eb = b.await_event(Duration::from_secs(2), |e| e.current == Some(leader));
        assert_eq!(ea, eb);
        drop(watch);
        match Arc::try_unwrap(cluster) {
            Ok(c) => c.shutdown(),
            Err(_) => panic!("cluster still referenced"),
        }
    }

    #[test]
    fn debug_format() {
        let cluster = Arc::new(Cluster::start(OmegaVariant::Alg1, 2, fast()));
        let watch = LeaderWatch::start(Arc::clone(&cluster), Duration::from_millis(1));
        let _sub = watch.subscribe();
        let out = format!("{watch:?}");
        assert!(out.contains("subscribers: 1"));
        drop(watch);
        match Arc::try_unwrap(cluster) {
            Ok(c) => c.shutdown(),
            Err(_) => panic!("cluster still referenced"),
        }
    }
}
