//! A full election cluster on real threads.

use std::time::{Duration, Instant};

use omega_core::OmegaVariant;
use omega_registers::{MemorySpace, ProcessId, ProcessSet};

use crate::coop::{CoopConfig, CoopRuntime, CoopTask};
use crate::node::{LeaderProbe, Node, NodeConfig, NodeCore};

/// An `n`-process shared-memory system running one of the Ω variants on
/// operating-system threads.
///
/// # Examples
///
/// ```no_run
/// use omega_runtime::{Cluster, NodeConfig};
/// use omega_core::OmegaVariant;
/// use std::time::Duration;
///
/// let cluster = Cluster::start(OmegaVariant::Alg1, 4, NodeConfig::default());
/// let leader = cluster
///     .await_stable_leader(Duration::from_millis(50), Duration::from_secs(5))
///     .expect("election settles");
/// println!("elected {leader}");
/// cluster.shutdown();
/// ```
pub struct Cluster {
    space: MemorySpace,
    nodes: Vec<Node>,
    variant: OmegaVariant,
    /// Present when the nodes are hosted on the cooperative scheduler
    /// instead of dedicated threads; shut down after the nodes halt.
    coop: Option<CoopRuntime>,
}

impl Cluster {
    /// Builds the shared memory for `variant` and spawns `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn start(variant: OmegaVariant, n: usize, config: NodeConfig) -> Self {
        let (space, processes) = variant.build_processes(n);
        let nodes = processes
            .into_iter()
            .map(|p| Node::spawn(p, config))
            .collect();
        Cluster {
            space,
            nodes,
            variant,
            coop: None,
        }
    }

    /// Builds the shared memory for `variant` and hosts `n` nodes on the
    /// cooperative scheduler ([`coop`](crate::coop)): all `2n` task loops
    /// multiplexed over `config.workers` threads instead of `2n` dedicated
    /// ones, each worker owning one deadline-wheel shard (node `i`'s two
    /// loops live on shard `i % workers`) with overdue-task stealing
    /// between them. Everything else — queries, crash injection,
    /// statistics, [`await_stable_leader`](Self::await_stable_leader) —
    /// behaves identically, which is what makes thread-vs-coop outcomes
    /// comparable.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `config.workers == 0`.
    #[must_use]
    pub fn start_coop(variant: OmegaVariant, n: usize, config: CoopConfig) -> Self {
        let (space, processes) = variant.build_processes(n);
        Self::host_coop(variant, space, processes, config)
    }

    /// [`start_coop`](Self::start_coop), plus application tasks on the
    /// same wheel: `tasks` is called once with the cluster's memory space
    /// and one [`LeaderProbe`] per node (identity order), and the
    /// [`CoopTask`]s it returns are multiplexed alongside the `2n` node
    /// loops — a replicated service's work loops and its client workload
    /// pump compete with election steps for the same workers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `config.workers == 0`.
    #[must_use]
    pub fn start_coop_with(
        variant: OmegaVariant,
        n: usize,
        config: CoopConfig,
        tasks: impl FnOnce(&MemorySpace, &[LeaderProbe]) -> Vec<Box<dyn CoopTask>>,
    ) -> Self {
        let (space, processes) = variant.build_processes(n);
        let cores: Vec<_> = processes.into_iter().map(NodeCore::new).collect();
        let probes: Vec<LeaderProbe> = cores
            .iter()
            .map(|core| LeaderProbe::new(std::sync::Arc::clone(core)))
            .collect();
        let extras = tasks(&space, &probes);
        let runtime = CoopRuntime::start_with_tasks(&cores, config, extras);
        let nodes = cores.into_iter().map(Node::hosted).collect();
        Cluster {
            space,
            nodes,
            variant,
            coop: Some(runtime),
        }
    }

    /// [`start_coop`](Self::start_coop) over an existing memory space —
    /// the cooperative counterpart of [`start_in`](Self::start_in), e.g.
    /// for disk-backed registers.
    #[must_use]
    pub fn start_coop_in(variant: OmegaVariant, space: &MemorySpace, config: CoopConfig) -> Self {
        let processes = variant.build_processes_in(space);
        Self::host_coop(variant, space.clone(), processes, config)
    }

    fn host_coop(
        variant: OmegaVariant,
        space: MemorySpace,
        processes: Vec<Box<dyn omega_core::OmegaProcess>>,
        config: CoopConfig,
    ) -> Self {
        let cores: Vec<_> = processes.into_iter().map(NodeCore::new).collect();
        let runtime = CoopRuntime::start(&cores, config);
        let nodes = cores.into_iter().map(Node::hosted).collect();
        Cluster {
            space,
            nodes,
            variant,
            coop: Some(runtime),
        }
    }

    /// Spawns the cluster over an existing memory space — the entry point
    /// for alternative substrates, e.g. a disk-backed space from
    /// [`SanDisk::memory_space`](crate::san::SanDisk::memory_space) whose
    /// registers live on SAN blocks. The system size is the space's
    /// process count.
    #[must_use]
    pub fn start_in(variant: OmegaVariant, space: &MemorySpace, config: NodeConfig) -> Self {
        let nodes = variant
            .build_processes_in(space)
            .into_iter()
            .map(|p| Node::spawn(p, config))
            .collect();
        Cluster {
            space: space.clone(),
            nodes,
            variant,
            coop: None,
        }
    }

    /// The variant this cluster runs.
    #[must_use]
    pub fn variant(&self) -> OmegaVariant {
        self.variant
    }

    /// The memory space backing the cluster (for statistics and footprint
    /// inspection).
    #[must_use]
    pub fn space(&self) -> &MemorySpace {
        &self.space
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The node hosting `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn node(&self, pid: ProcessId) -> &Node {
        &self.nodes[pid.index()]
    }

    /// Every live node's current leader estimate (`None` for crashed nodes).
    #[must_use]
    pub fn leaders(&self) -> Vec<Option<ProcessId>> {
        self.nodes.iter().map(Node::cached_leader).collect()
    }

    /// The set of processes that have not crashed.
    #[must_use]
    pub fn correct(&self) -> ProcessSet {
        let mut set = ProcessSet::new(self.n());
        for node in &self.nodes {
            if !node.is_crashed() {
                set.insert(node.pid());
            }
        }
        set
    }

    /// Per-process `T2` step counts, in identity order (the thread-runtime
    /// analogue of the simulator's `steps_taken`).
    #[must_use]
    pub fn steps(&self) -> Vec<u64> {
        self.nodes.iter().map(Node::steps).collect()
    }

    /// Per-process `T3` timer-expiry counts, in identity order.
    #[must_use]
    pub fn timer_fires(&self) -> Vec<u64> {
        self.nodes.iter().map(Node::timer_fires).collect()
    }

    /// Total events executed so far across all nodes (`T2` steps plus `T3`
    /// timer expirations) — the thread-runtime analogue of the simulator's
    /// `events_processed`, used for throughput reporting.
    #[must_use]
    pub fn events_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.steps() + n.timer_fires()).sum()
    }

    /// Space-wide scan-saving counters: shared reads avoided by the
    /// epoch-validated suspicion caches and sharded `T3` passes executed
    /// (cheap — does not walk the register registry).
    #[must_use]
    pub fn scan_stats(&self) -> omega_registers::ScanStats {
        self.space.scan_counters().snapshot()
    }

    /// Crash-stops `pid`.
    pub fn crash(&self, pid: ProcessId) {
        self.nodes[pid.index()].crash();
    }

    /// Crashes the process the (plurality of) live nodes currently trust,
    /// returning its identity, or `None` when no estimate exists yet.
    pub fn crash_current_leader(&self) -> Option<ProcessId> {
        let mut counts: Vec<(ProcessId, usize)> = Vec::new();
        for leader in self.leaders().into_iter().flatten() {
            match counts.iter_mut().find(|(p, _)| *p == leader) {
                Some((_, c)) => *c += 1,
                None => counts.push((leader, 1)),
            }
        }
        let target = counts
            .into_iter()
            .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
            .map(|(p, _)| p)?;
        self.crash(target);
        Some(target)
    }

    /// Polls until every correct node has reported the same correct leader
    /// continuously for `window`, or `timeout` real time has elapsed.
    ///
    /// Returns the agreed leader, or `None` on timeout. Uses the cached
    /// estimates, so polling does not add shared-memory traffic.
    #[must_use]
    pub fn await_stable_leader(&self, window: Duration, timeout: Duration) -> Option<ProcessId> {
        self.await_stable_leader_observing(window, timeout, |_| {})
    }

    /// Like [`await_stable_leader`](Self::await_stable_leader), but invokes
    /// `observe` with every node's current estimate on each poll (~2 ms
    /// cadence) — the hook drivers use to count estimate changes or inject
    /// scripted faults while waiting, without duplicating the agreement
    /// state machine.
    #[must_use]
    pub fn await_stable_leader_observing(
        &self,
        window: Duration,
        timeout: Duration,
        mut observe: impl FnMut(&[Option<ProcessId>]),
    ) -> Option<ProcessId> {
        let start = Instant::now();
        let poll = Duration::from_millis(2);
        let mut agreed_since: Option<(ProcessId, Instant)> = None;
        while start.elapsed() < timeout {
            let estimates = self.leaders();
            observe(&estimates);
            let correct = self.correct();
            let mut live = correct.iter().map(|p| estimates[p.index()]);
            let agreed = match live.next().flatten() {
                Some(leader) if correct.contains(leader) && live.all(|e| e == Some(leader)) => {
                    Some(leader)
                }
                _ => None,
            };
            match (agreed, agreed_since) {
                (Some(leader), Some((prev, since))) if leader == prev => {
                    if since.elapsed() >= window {
                        return Some(leader);
                    }
                }
                (Some(leader), _) => agreed_since = Some((leader, Instant::now())),
                (None, _) => agreed_since = None,
            }
            std::thread::sleep(poll);
        }
        None
    }

    /// Stops every node and joins their threads (and the cooperative
    /// workers, when the cluster runs on the coop substrate).
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            node.shutdown();
        }
        if let Some(mut runtime) = self.coop.take() {
            runtime.shutdown();
        }
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("variant", &self.variant)
            .field("n", &self.n())
            .field("correct", &self.correct())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> NodeConfig {
        NodeConfig {
            step_interval: Duration::from_micros(200),
            tick: Duration::from_micros(300),
        }
    }

    #[test]
    fn cluster_elects_a_leader_on_threads() {
        let cluster = Cluster::start(OmegaVariant::Alg1, 4, fast());
        let leader = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("threads must elect a leader");
        assert!(cluster.correct().contains(leader));
        assert_eq!(cluster.n(), 4);
        assert_eq!(cluster.variant(), OmegaVariant::Alg1);
        cluster.shutdown();
    }

    #[test]
    fn alg2_cluster_elects_on_threads() {
        let cluster = Cluster::start(OmegaVariant::Alg2, 3, fast());
        let leader = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("bounded-memory variant elects too");
        assert!(cluster.correct().contains(leader));
        cluster.shutdown();
    }

    #[test]
    fn failover_after_leader_crash() {
        let cluster = Cluster::start(OmegaVariant::Alg1, 3, fast());
        let first = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("initial election");
        let crashed = cluster.crash_current_leader().expect("has a leader");
        assert_eq!(crashed, first);
        let second = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("re-election after crash");
        assert_ne!(second, first, "a crashed process cannot stay leader");
        assert!(cluster.correct().contains(second));
        cluster.shutdown();
    }

    #[test]
    fn cluster_elects_over_a_disk_backed_space() {
        use crate::san::{SanDisk, SanLatency};
        let disk = SanDisk::new(SanLatency::instant(), 5);
        let space = disk.memory_space(3);
        let cluster = Cluster::start_in(OmegaVariant::Alg1, &space, fast());
        let leader = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("the election works over disk blocks");
        assert!(cluster.correct().contains(leader));
        assert_eq!(space.block_map().unwrap().blocks(), 3 + 3 + 9);
        cluster.shutdown();
        // Every shared register access really went to the disk. Compared
        // only after shutdown: with node threads joined, both counters are
        // quiescent and must agree exactly.
        let stats = space.stats();
        assert_eq!(
            disk.accesses(),
            stats.total_reads() + stats.total_writes(),
            "register and block accounting must agree"
        );
    }

    #[test]
    fn cluster_elects_a_leader_on_the_coop_substrate() {
        let cluster = Cluster::start_coop(OmegaVariant::Alg1, 4, CoopConfig::with_node(fast()));
        let leader = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("the cooperative scheduler must elect a leader");
        assert!(cluster.correct().contains(leader));
        assert!(cluster.events_total() > 0, "tasks retired events");
        cluster.shutdown();
    }

    #[test]
    fn coop_failover_after_leader_crash() {
        let cluster = Cluster::start_coop(OmegaVariant::Alg1, 3, CoopConfig::with_node(fast()));
        let first = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("initial election");
        let crashed = cluster.crash_current_leader().expect("has a leader");
        assert_eq!(crashed, first);
        let second = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("re-election after crash on coop");
        assert_ne!(second, first, "a crashed process cannot stay leader");
        cluster.shutdown();
    }

    #[test]
    fn coop_scales_past_the_dedicated_thread_limit() {
        // n = 24 would mean 48 OS threads on the thread substrate — the
        // size class the wall-clock backends used to refuse. On coop it is
        // one worker thread, and the election still settles.
        let n = 24;
        let cluster = Cluster::start_coop(OmegaVariant::Alg1, n, CoopConfig::with_node(fast()));
        let leader = cluster
            .await_stable_leader(Duration::from_millis(60), Duration::from_secs(30))
            .expect("coop elects beyond the thread wall");
        assert!(cluster.correct().contains(leader));
        assert_eq!(cluster.n(), n);
        assert!(
            cluster.steps().iter().all(|&s| s > 0),
            "every multiplexed node stepped"
        );
        cluster.shutdown();
    }

    #[test]
    fn coop_worker_pool_shards_the_cluster_and_still_elects() {
        // Same size class, but on a four-worker pool: the 48 task loops
        // shard twelve-per-wheel, and the election must settle exactly as
        // it does single-worker — sharding is a scheduling change, not an
        // algorithm change.
        let n = 24;
        let config = CoopConfig {
            node: fast(),
            workers: 4,
        };
        let cluster = Cluster::start_coop(OmegaVariant::Alg1, n, config);
        let leader = cluster
            .await_stable_leader(Duration::from_millis(60), Duration::from_secs(30))
            .expect("coop elects on a sharded worker pool");
        assert!(cluster.correct().contains(leader));
        assert!(
            cluster.steps().iter().all(|&s| s > 0),
            "every node stepped on its shard"
        );
        cluster.shutdown();
    }

    #[test]
    fn coop_cluster_elects_over_a_disk_backed_space() {
        use crate::san::{SanDisk, SanLatency};
        let disk = SanDisk::new(SanLatency::instant(), 5);
        let space = disk.memory_space(3);
        let cluster =
            Cluster::start_coop_in(OmegaVariant::Alg1, &space, CoopConfig::with_node(fast()));
        let leader = cluster
            .await_stable_leader(Duration::from_millis(40), Duration::from_secs(10))
            .expect("coop over disk blocks elects");
        assert!(cluster.correct().contains(leader));
        cluster.shutdown();
        let stats = space.stats();
        assert_eq!(
            disk.accesses(),
            stats.total_reads() + stats.total_writes(),
            "register and block accounting must agree on coop too"
        );
    }

    #[test]
    fn leaders_view_reports_crashed_nodes_as_none() {
        let cluster = Cluster::start(OmegaVariant::Alg1, 3, fast());
        cluster.crash(ProcessId::new(2));
        std::thread::sleep(Duration::from_millis(10));
        let leaders = cluster.leaders();
        assert_eq!(leaders[2], None);
        assert_eq!(cluster.correct().len(), 2);
        let dbg = format!("{cluster:?}");
        assert!(dbg.contains("Alg1"));
        cluster.shutdown();
    }
}
