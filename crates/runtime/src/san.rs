//! A simulated storage-area-network (SAN) disk, and atomic registers on it.
//!
//! The paper motivates shared-memory Ω with systems where "computers
//! communicate through a network of attached disks" (Section 1, citing
//! Disk Paxos \[9\], Petal \[18\], NASD \[10\]): each disk block behaves as an
//! atomic register, written by one machine and read by all. This module
//! reproduces that substrate in miniature:
//!
//! * [`SanDisk`] — a block device with configurable, seeded access latency
//!   (network round-trip + seek), shared by all client machines, keeping
//!   block-level footprint accounting ([`SanDisk::stats`]: accesses,
//!   distinct blocks touched, simulated service time);
//! * [`SanDisk::memory_space`] — an instrumented
//!   [`MemorySpace`] whose registers live on
//!   this disk, one block per 1WnR register, so the *unmodified* election
//!   algorithms run over the SAN (this is what the scenario crate's
//!   `SanDriver` builds on);
//! * [`DiskNatRegister`] / [`DiskFlagRegister`] — hand-laid 1WnR atomic
//!   registers mapped onto explicit blocks, ownership-enforced exactly
//!   like their in-memory counterparts (the minimal Disk-Paxos picture,
//!   kept for exposition and tests).
//!
//! Reads and writes take real time (the latency model sleeps), which is why
//! the `omega-runtime` cluster exposes [`NodeConfig::san_like`] /
//! [`NodeConfig::san_paced`] pacing: on a SAN, heartbeat cadence and
//! timeout units stretch with the disk's access time, and the election
//! algorithms are unaffected — their assumptions only speak about
//! *eventual* timeliness.
//!
//! # Running a registry scenario on the SAN
//!
//! The scenario crate's `SanDriver` packages the pieces below — disk,
//! disk-backed space, SAN-paced cluster — behind the standard `Driver`
//! trait, so any registry scenario runs over disk blocks unchanged:
//!
//! ```ignore
//! use omega_scenario::{registry, Driver, SanDriver};
//!
//! // Elect over simulated disk blocks, instant latency (CI profile).
//! let outcome = SanDriver::instant().run(&registry::fault_free());
//! outcome.assert_election();
//! let san = outcome.san.expect("SAN backends report block footprints");
//! assert_eq!(san.blocks_mapped, outcome.register_count as u64);
//!
//! // Or with commodity-iSCSI latency: same election, stretched clocks.
//! let paced = SanDriver::new(omega_runtime::san::SanLatency::commodity());
//! let slow = paced.run(&registry::fault_free());
//! assert!(slow.san.unwrap().service_time_ms > 0.0);
//! ```
//!
//! (The example is `ignore`d here because `omega-scenario` sits above this
//! crate in the workspace; the same flow is executed as a real test in the
//! scenario crate and the root test suite.)
//!
//! [`NodeConfig::san_like`]: crate::NodeConfig::san_like
//! [`NodeConfig::san_paced`]: crate::NodeConfig::san_paced

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use omega_registers::sync::Mutex;
use omega_registers::{BlockDevice, MemorySpace, ProcessId};

/// Latency model of one disk: fixed base plus deterministic pseudo-random
/// jitter.
///
/// # Jitter distribution
///
/// Each access adds a jitter drawn **uniformly from `[0, jitter]`
/// inclusive**: one xorshift64 step per access produces a 64-bit word `s`,
/// and the draw is the fixed-point widening multiply
/// `(s × (jitter_ns + 1)) >> 64` — bias-free up to the 2⁻⁶⁴ rounding of
/// the multiply (unlike a modulo, which over-weights small residues and
/// can never produce the configured maximum). The sequence is a pure
/// function of the disk seed and the access count, so runs are
/// reproducible in value space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanLatency {
    /// Minimum time for any block access.
    pub base: Duration,
    /// Maximum extra jitter added per access (inclusive).
    pub jitter: Duration,
}

impl SanLatency {
    /// Zero-latency model (for tests).
    #[must_use]
    pub fn instant() -> Self {
        SanLatency {
            base: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// A commodity-iSCSI-like profile: ~0.5 ms ± 0.5 ms per access.
    #[must_use]
    pub fn commodity() -> Self {
        SanLatency {
            base: Duration::from_micros(500),
            jitter: Duration::from_micros(500),
        }
    }

    /// The expected (mean) duration of one block access under this model.
    #[must_use]
    pub fn expected(&self) -> Duration {
        self.base + self.jitter / 2
    }
}

/// One xorshift64 step.
fn xorshift(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Maps a 64-bit random word to `[0, max_ns]` **inclusive**, bias-free:
/// widening multiply instead of modulo (see [`SanLatency`]).
fn jitter_ns(word: u64, max_ns: u64) -> u64 {
    ((u128::from(word) * (u128::from(max_ns) + 1)) >> 64) as u64
}

/// Cumulative footprint of one disk: the block-level accounting the SAN
/// scenario driver reports alongside the register-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanDiskStats {
    /// Total block accesses served (reads + writes).
    pub accesses: u64,
    /// Distinct blocks ever read or written through the access path.
    pub blocks_touched: u64,
    /// Total simulated service time slept across all accesses.
    pub service_time: Duration,
}

/// A shared block device: the network-attached disk.
///
/// Blocks are 8-byte values addressed by `u64`. Every access sleeps
/// according to the latency model; the block map itself is protected by a
/// lock, so individual block reads/writes are trivially linearizable —
/// exactly the atomic-register abstraction a SAN controller provides.
#[derive(Debug)]
pub struct SanDisk {
    state: Mutex<DiskState>,
    latency: SanLatency,
    rng_state: AtomicU64,
    accesses: AtomicU64,
    service_ns: AtomicU64,
    /// Service-time multiplier (1 = calm). Chaos latency storms raise it
    /// for a window and drop it back; see [`SanDisk::set_storm_factor`].
    storm_factor: AtomicU64,
}

#[derive(Debug, Default)]
struct DiskState {
    blocks: HashMap<u64, u64>,
    /// Every address that went through the attributed access path.
    touched: HashSet<u64>,
}

impl SanDisk {
    /// Creates a disk with the given latency model; `seed` drives the
    /// jitter sequence.
    #[must_use]
    pub fn new(latency: SanLatency, seed: u64) -> Arc<Self> {
        Arc::new(SanDisk {
            state: Mutex::new(DiskState::default()),
            latency,
            rng_state: AtomicU64::new(seed | 1),
            accesses: AtomicU64::new(0),
            service_ns: AtomicU64::new(0),
            storm_factor: AtomicU64::new(1),
        })
    }

    /// This disk's latency model.
    #[must_use]
    pub fn latency(&self) -> SanLatency {
        self.latency
    }

    /// Sets the latency-storm multiplier applied to every access's
    /// simulated service time (clamped to ≥ 1; 1 restores calm). This is
    /// how chaos campaigns realize a `storm` phase on the SAN: the disk
    /// itself slows, the election algorithms above are untouched.
    pub fn set_storm_factor(&self, factor: u64) {
        self.storm_factor.store(factor.max(1), Ordering::Relaxed);
    }

    /// The current storm multiplier (1 = calm).
    #[must_use]
    pub fn storm_factor(&self) -> u64 {
        self.storm_factor.load(Ordering::Relaxed)
    }

    fn simulate_latency(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if self.latency.base.is_zero() && self.latency.jitter.is_zero() {
            return;
        }
        let jitter = if self.latency.jitter.is_zero() {
            Duration::ZERO
        } else {
            let s = self.advance_jitter_rng();
            Duration::from_nanos(jitter_ns(s, self.latency.jitter.as_nanos() as u64))
        };
        let factor = self.storm_factor.load(Ordering::Relaxed);
        let service =
            (self.latency.base + jitter).saturating_mul(u32::try_from(factor).unwrap_or(u32::MAX));
        self.service_ns
            .fetch_add(service.as_nanos() as u64, Ordering::Relaxed);
        if !service.is_zero() {
            std::thread::sleep(service);
        }
    }

    /// Claims the next step of the shared jitter sequence, atomically.
    ///
    /// Concurrent accessors must each observe a *distinct* step: a plain
    /// load/store pair here loses updates under contention and hands
    /// racing accessors identical jitter, which is exactly the bug the
    /// CAS loop (`fetch_update`) closes — after any interleaving, the
    /// state equals a single-threaded replay of one xorshift step per
    /// jittered access.
    fn advance_jitter_rng(&self) -> u64 {
        self.rng_state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(xorshift(s)))
            .map(xorshift)
            .expect("xorshift update always succeeds")
    }

    /// Reads block `addr` (zero if never written).
    #[must_use]
    pub fn read_block(&self, addr: u64) -> u64 {
        self.simulate_latency();
        let mut state = self.state.lock();
        state.touched.insert(addr);
        *state.blocks.get(&addr).unwrap_or(&0)
    }

    /// Writes block `addr`.
    pub fn write_block(&self, addr: u64, value: u64) {
        self.simulate_latency();
        let mut state = self.state.lock();
        state.touched.insert(addr);
        state.blocks.insert(addr, value);
    }

    /// Reads block `addr` without latency or accounting (harness-side, the
    /// analogue of a register `peek`).
    #[must_use]
    pub fn peek_block(&self, addr: u64) -> u64 {
        *self.state.lock().blocks.get(&addr).unwrap_or(&0)
    }

    /// Writes block `addr` without latency or accounting (harness-side, the
    /// analogue of a register `poke`; also how initial values are seeded).
    pub fn poke_block(&self, addr: u64, value: u64) {
        self.state.lock().blocks.insert(addr, value);
    }

    /// Total block accesses served (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// The jitter RNG state after the accesses served so far — a pure
    /// function of the seed and the access count, which the regression
    /// tests replay single-threadedly to prove no RNG step was lost.
    #[must_use]
    pub fn rng_state(&self) -> u64 {
        self.rng_state.load(Ordering::Relaxed)
    }

    /// Cumulative block-level footprint: accesses, distinct blocks
    /// touched, and total simulated service time.
    #[must_use]
    pub fn stats(&self) -> SanDiskStats {
        SanDiskStats {
            accesses: self.accesses(),
            blocks_touched: self.state.lock().touched.len() as u64,
            service_time: Duration::from_nanos(self.service_ns.load(Ordering::Relaxed)),
        }
    }

    /// A shared-memory space whose registers live on this disk, one block
    /// per register (see [`MemorySpace::with_block_device`]) — the layout
    /// the scenario crate's `SanDriver` realizes elections over.
    #[must_use]
    pub fn memory_space(self: &Arc<Self>, n_processes: usize) -> MemorySpace {
        MemorySpace::with_block_device(n_processes, Arc::clone(self) as Arc<dyn BlockDevice>)
    }
}

impl BlockDevice for SanDisk {
    fn read_block(&self, addr: u64) -> u64 {
        SanDisk::read_block(self, addr)
    }

    fn write_block(&self, addr: u64, value: u64) {
        SanDisk::write_block(self, addr, value);
    }

    fn peek_block(&self, addr: u64) -> u64 {
        SanDisk::peek_block(self, addr)
    }

    fn poke_block(&self, addr: u64, value: u64) {
        SanDisk::poke_block(self, addr, value);
    }
}

/// A 1WnR natural-number register stored in a disk block.
///
/// The owner machine writes the block; everyone reads it. This is the
/// standard SAN realization of the paper's register model (one block — or
/// one disk sector per writer — per register).
///
/// # Examples
///
/// ```
/// use omega_runtime::san::{DiskNatRegister, SanDisk, SanLatency};
/// use omega_registers::ProcessId;
///
/// let disk = SanDisk::new(SanLatency::instant(), 7);
/// let owner = ProcessId::new(0);
/// let reg = DiskNatRegister::new(disk, 0x10, owner);
/// reg.write(owner, 42);
/// assert_eq!(reg.read(ProcessId::new(1)), 42);
/// ```
#[derive(Debug, Clone)]
pub struct DiskNatRegister {
    disk: Arc<SanDisk>,
    addr: u64,
    owner: ProcessId,
}

impl DiskNatRegister {
    /// Maps a register onto block `addr`, owned by `owner`.
    #[must_use]
    pub fn new(disk: Arc<SanDisk>, addr: u64, owner: ProcessId) -> Self {
        DiskNatRegister { disk, addr, owner }
    }

    /// The owning machine.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Reads the register on behalf of any machine.
    #[must_use]
    pub fn read(&self, _reader: ProcessId) -> u64 {
        self.disk.read_block(self.addr)
    }

    /// Writes the register.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the owner.
    pub fn write(&self, writer: ProcessId, value: u64) {
        assert_eq!(
            writer, self.owner,
            "machine {writer} attempted to write a disk register owned by {}",
            self.owner
        );
        self.disk.write_block(self.addr, value);
    }
}

/// A 1WnR boolean register stored in a disk block.
#[derive(Debug, Clone)]
pub struct DiskFlagRegister {
    inner: DiskNatRegister,
}

impl DiskFlagRegister {
    /// Maps a flag register onto block `addr`, owned by `owner`.
    #[must_use]
    pub fn new(disk: Arc<SanDisk>, addr: u64, owner: ProcessId) -> Self {
        DiskFlagRegister {
            inner: DiskNatRegister::new(disk, addr, owner),
        }
    }

    /// Reads the flag on behalf of any machine.
    #[must_use]
    pub fn read(&self, reader: ProcessId) -> bool {
        self.inner.read(reader) != 0
    }

    /// Writes the flag.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the owner.
    pub fn write(&self, writer: ProcessId, value: bool) {
        self.inner.write(writer, u64::from(value));
    }
}

/// The Figure-2 register layout mapped onto one shared disk: `PROGRESS[i]`
/// at block `i`, `STOP[i]` at block `n + i`, `SUSPICIONS[i][k]` at block
/// `2n + i·n + k`.
#[derive(Debug)]
pub struct DiskRegisterLayout {
    n: usize,
    /// `PROGRESS[i]`, owned by machine `i`.
    pub progress: Vec<DiskNatRegister>,
    /// `STOP[i]`, owned by machine `i`.
    pub stop: Vec<DiskFlagRegister>,
    /// `SUSPICIONS[i][k]`, row-owned.
    pub suspicions: Vec<Vec<DiskNatRegister>>,
}

impl DiskRegisterLayout {
    /// Lays out the Figure-2 registers for `n` machines on `disk`.
    #[must_use]
    pub fn new(disk: &Arc<SanDisk>, n: usize) -> Self {
        let progress = (0..n)
            .map(|i| DiskNatRegister::new(Arc::clone(disk), i as u64, ProcessId::new(i)))
            .collect();
        let stop = (0..n)
            .map(|i| DiskFlagRegister::new(Arc::clone(disk), (n + i) as u64, ProcessId::new(i)))
            .collect();
        let suspicions = (0..n)
            .map(|i| {
                (0..n)
                    .map(|k| {
                        DiskNatRegister::new(
                            Arc::clone(disk),
                            (2 * n + i * n + k) as u64,
                            ProcessId::new(i),
                        )
                    })
                    .collect()
            })
            .collect();
        DiskRegisterLayout {
            n,
            progress,
            stop,
            suspicions,
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total disk blocks the layout occupies.
    #[must_use]
    pub fn blocks(&self) -> usize {
        2 * self.n + self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_registers::lincheck::{is_linearizable, HistoryRecorder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn blocks_default_to_zero() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        assert_eq!(disk.read_block(99), 0);
    }

    #[test]
    fn block_roundtrip_and_access_count() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        disk.write_block(4, 123);
        assert_eq!(disk.read_block(4), 123);
        assert_eq!(disk.accesses(), 2);
    }

    #[test]
    fn disk_register_enforces_ownership() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let reg = DiskNatRegister::new(disk, 0, p(1));
        assert_eq!(reg.owner(), p(1));
        reg.write(p(1), 9);
        assert_eq!(reg.read(p(0)), 9);
    }

    #[test]
    #[should_panic(expected = "attempted to write a disk register")]
    fn disk_register_rejects_foreign_writer() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let reg = DiskNatRegister::new(disk, 0, p(1));
        reg.write(p(0), 9);
    }

    #[test]
    fn flag_register_roundtrip() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let flag = DiskFlagRegister::new(disk, 7, p(0));
        assert!(!flag.read(p(1)), "unwritten flag reads false");
        flag.write(p(0), true);
        assert!(flag.read(p(1)));
        flag.write(p(0), false);
        assert!(!flag.read(p(1)));
    }

    #[test]
    fn layout_assigns_distinct_blocks_and_owners() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let layout = DiskRegisterLayout::new(&disk, 3);
        assert_eq!(layout.n(), 3);
        assert_eq!(layout.blocks(), 6 + 9);
        // Write through every register; each must land in its own block.
        for i in 0..3 {
            layout.progress[i].write(p(i), 100 + i as u64);
            layout.stop[i].write(p(i), true);
            for k in 0..3 {
                layout.suspicions[i][k].write(p(i), (10 * i + k) as u64);
            }
        }
        for i in 0..3 {
            assert_eq!(layout.progress[i].read(p(0)), 100 + i as u64);
            for k in 0..3 {
                assert_eq!(layout.suspicions[i][k].read(p(0)), (10 * i + k) as u64);
            }
        }
    }

    #[test]
    fn concurrent_jitter_rng_loses_no_steps() {
        // The headline regression: the xorshift state must advance by
        // exactly one distinct step per jittered access even under heavy
        // thread contention. The old load/store pair lost updates (two
        // racing accessors read the same state, slept identical jitter,
        // and left the sequence short). Hammer the advance primitive from
        // many threads in a tight loop — the contention profile where the
        // torn pair reliably loses steps even on a single-core host — and
        // assert the post-run state equals a single-threaded replay of
        // exactly one step per access.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 1_000_000;
        let seed = 0x00DE_C0DE;
        let disk = SanDisk::new(SanLatency::commodity(), seed);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let disk = Arc::clone(&disk);
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        std::hint::black_box(disk.advance_jitter_rng());
                    }
                });
            }
        });
        let mut replay = seed | 1;
        for _ in 0..THREADS as u64 * PER_THREAD {
            replay = super::xorshift(replay);
        }
        assert_eq!(
            disk.rng_state(),
            replay,
            "jitter RNG lost steps under contention"
        );
    }

    #[test]
    fn concurrent_accesses_replay_as_a_single_thread() {
        // End-to-end version of the regression above, through the public
        // block API: after a many-thread run with jittered latency, the
        // RNG state must equal a single-threaded replay of `accesses()`
        // steps (every access drew jitter exactly once, none were lost or
        // duplicated).
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 2_000;
        let seed = 77;
        let disk = SanDisk::new(
            SanLatency {
                base: Duration::ZERO,
                // 1 ns keeps the RNG hot while sleeping ~nothing.
                jitter: Duration::from_nanos(1),
            },
            seed,
        );
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let disk = Arc::clone(&disk);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        if (i + t as u64).is_multiple_of(2) {
                            let _ = disk.read_block(i % 64);
                        } else {
                            disk.write_block(i % 64, i);
                        }
                    }
                });
            }
        });
        let accesses = disk.accesses();
        assert_eq!(accesses, THREADS as u64 * PER_THREAD);
        let mut replay = seed | 1;
        for _ in 0..accesses {
            replay = super::xorshift(replay);
        }
        assert_eq!(disk.rng_state(), replay);
    }

    #[test]
    fn jitter_is_inclusive_and_unbiased() {
        // Drive the pure jitter map over a long xorshift sequence: every
        // value in [0, max] must be reachable — including the maximum,
        // which the old `s % max` could never produce — with no gross bias
        // towards small residues.
        let max = 3u64;
        let mut s = 1u64;
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            s = super::xorshift(s);
            counts[super::jitter_ns(s, max) as usize] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            let expected = 40_000 / counts.len() as u64;
            assert!(
                count > expected * 8 / 10 && count < expected * 12 / 10,
                "jitter value {value} drawn {count} times (expected ~{expected})"
            );
        }
        // Degenerate cases.
        assert_eq!(super::jitter_ns(u64::MAX, 0), 0);
        assert_eq!(super::jitter_ns(u64::MAX, 7), 7, "max must be reachable");
        assert_eq!(super::jitter_ns(0, 7), 0);
    }

    #[test]
    fn disk_stats_track_blocks_and_service_time() {
        let disk = SanDisk::new(SanLatency::instant(), 3);
        disk.write_block(0, 1);
        disk.write_block(0, 2);
        let _ = disk.read_block(1);
        let _ = disk.peek_block(9); // harness-side: invisible
        disk.poke_block(9, 5); // harness-side: invisible
        let stats = disk.stats();
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.blocks_touched, 2, "blocks 0 and 1");
        assert_eq!(stats.service_time, Duration::ZERO);

        let jittery = SanDisk::new(
            SanLatency {
                base: Duration::from_nanos(100),
                jitter: Duration::ZERO,
            },
            3,
        );
        let _ = jittery.read_block(0);
        assert!(jittery.stats().service_time >= Duration::from_nanos(100));
    }

    #[test]
    fn storm_factor_multiplies_service_time() {
        let disk = SanDisk::new(
            SanLatency {
                base: Duration::from_nanos(100),
                jitter: Duration::ZERO,
            },
            3,
        );
        assert_eq!(disk.storm_factor(), 1);
        let _ = disk.read_block(0);
        let calm = disk.stats().service_time;
        assert_eq!(calm, Duration::from_nanos(100));
        disk.set_storm_factor(5);
        let _ = disk.read_block(0);
        assert_eq!(
            disk.stats().service_time - calm,
            Duration::from_nanos(500),
            "stormed access pays factor x the calm service time"
        );
        // Clamped to >= 1: a zero factor cannot make the disk free.
        disk.set_storm_factor(0);
        assert_eq!(disk.storm_factor(), 1);
    }

    #[test]
    fn disk_backed_memory_space_runs_registers_over_blocks() {
        let disk = SanDisk::new(SanLatency::instant(), 11);
        let space = disk.memory_space(2);
        let progress = space.nat_array("PROGRESS", |_| 0);
        progress.get(p(0)).write(p(0), 42);
        assert_eq!(progress.get(p(0)).read(p(1)), 42);
        // Register-level and block-level accounting agree.
        assert_eq!(space.stats().total_writes(), 1);
        assert_eq!(space.stats().total_reads(), 1);
        assert_eq!(disk.accesses(), 2);
        // The value physically lives in the block the layout mapper chose.
        let map = space.block_map().expect("disk-backed space");
        assert_eq!(disk.peek_block(map.addr_of("PROGRESS[0]").unwrap()), 42);
    }

    #[test]
    fn latency_model_is_deterministic_in_value_space() {
        // Same seed → same jitter sequence → identical data outcomes.
        let run = |seed| {
            let disk = SanDisk::new(SanLatency::instant(), seed);
            disk.write_block(0, 5);
            disk.read_block(0)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn concurrent_disk_register_accesses_linearize() {
        let disk = SanDisk::new(
            SanLatency {
                base: Duration::from_micros(10),
                jitter: Duration::from_micros(20),
            },
            42,
        );
        let reg = DiskNatRegister::new(disk, 0, p(0));
        let rec = Arc::new(HistoryRecorder::new());
        std::thread::scope(|s| {
            {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for v in 1..=15u64 {
                        rec.write(p(0), v, || reg.write(p(0), v));
                    }
                });
            }
            for r in 1..3 {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..15 {
                        rec.read(p(r), || reg.read(p(r)));
                    }
                });
            }
        });
        let history = Arc::into_inner(rec).unwrap().finish();
        assert!(
            is_linearizable(&history, 0),
            "disk registers must be atomic"
        );
    }
}
