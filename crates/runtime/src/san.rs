//! A simulated storage-area-network (SAN) disk, and atomic registers on it.
//!
//! The paper motivates shared-memory Ω with systems where "computers
//! communicate through a network of attached disks" (Section 1, citing
//! Disk Paxos \[9\], Petal \[18\], NASD \[10\]): each disk block behaves as an
//! atomic register, written by one machine and read by all. This module
//! reproduces that substrate in miniature:
//!
//! * [`SanDisk`] — a block device with configurable, seeded access latency
//!   (network round-trip + seek), shared by all client machines;
//! * [`DiskNatRegister`] / [`DiskFlagRegister`] — 1WnR atomic registers
//!   mapped onto blocks, ownership-enforced exactly like their in-memory
//!   counterparts.
//!
//! Reads and writes take real time (the latency model sleeps), which is why
//! the `omega-runtime` cluster exposes [`NodeConfig::san_like`] pacing: on
//! a SAN, heartbeat cadence and timeout units stretch by the same factor,
//! and the election algorithms are unaffected — their assumptions only
//! speak about *eventual* timeliness.
//!
//! [`NodeConfig::san_like`]: crate::NodeConfig::san_like

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use omega_registers::sync::Mutex;
use omega_registers::ProcessId;

/// Latency model of one disk: fixed base plus deterministic pseudo-random
/// jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanLatency {
    /// Minimum time for any block access.
    pub base: Duration,
    /// Maximum extra jitter added per access.
    pub jitter: Duration,
}

impl SanLatency {
    /// Zero-latency model (for tests).
    #[must_use]
    pub fn instant() -> Self {
        SanLatency {
            base: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// A commodity-iSCSI-like profile: ~0.5 ms ± 0.5 ms per access.
    #[must_use]
    pub fn commodity() -> Self {
        SanLatency {
            base: Duration::from_micros(500),
            jitter: Duration::from_micros(500),
        }
    }
}

/// A shared block device: the network-attached disk.
///
/// Blocks are 8-byte values addressed by `u64`. Every access sleeps
/// according to the latency model; the block map itself is protected by a
/// lock, so individual block reads/writes are trivially linearizable —
/// exactly the atomic-register abstraction a SAN controller provides.
#[derive(Debug)]
pub struct SanDisk {
    blocks: Mutex<HashMap<u64, u64>>,
    latency: SanLatency,
    rng_state: AtomicU64,
    accesses: AtomicU64,
}

impl SanDisk {
    /// Creates a disk with the given latency model; `seed` drives the
    /// jitter sequence.
    #[must_use]
    pub fn new(latency: SanLatency, seed: u64) -> Arc<Self> {
        Arc::new(SanDisk {
            blocks: Mutex::new(HashMap::new()),
            latency,
            rng_state: AtomicU64::new(seed | 1),
            accesses: AtomicU64::new(0),
        })
    }

    fn simulate_latency(&self) {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if self.latency.base.is_zero() && self.latency.jitter.is_zero() {
            return;
        }
        // xorshift for deterministic jitter.
        let mut s = self.rng_state.load(Ordering::Relaxed);
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.rng_state.store(s, Ordering::Relaxed);
        let jitter_ns = if self.latency.jitter.is_zero() {
            0
        } else {
            s % (self.latency.jitter.as_nanos() as u64)
        };
        std::thread::sleep(self.latency.base + Duration::from_nanos(jitter_ns));
    }

    /// Reads block `addr` (zero if never written).
    #[must_use]
    pub fn read_block(&self, addr: u64) -> u64 {
        self.simulate_latency();
        *self.blocks.lock().get(&addr).unwrap_or(&0)
    }

    /// Writes block `addr`.
    pub fn write_block(&self, addr: u64, value: u64) {
        self.simulate_latency();
        self.blocks.lock().insert(addr, value);
    }

    /// Total block accesses served (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }
}

/// A 1WnR natural-number register stored in a disk block.
///
/// The owner machine writes the block; everyone reads it. This is the
/// standard SAN realization of the paper's register model (one block — or
/// one disk sector per writer — per register).
///
/// # Examples
///
/// ```
/// use omega_runtime::san::{DiskNatRegister, SanDisk, SanLatency};
/// use omega_registers::ProcessId;
///
/// let disk = SanDisk::new(SanLatency::instant(), 7);
/// let owner = ProcessId::new(0);
/// let reg = DiskNatRegister::new(disk, 0x10, owner);
/// reg.write(owner, 42);
/// assert_eq!(reg.read(ProcessId::new(1)), 42);
/// ```
#[derive(Debug, Clone)]
pub struct DiskNatRegister {
    disk: Arc<SanDisk>,
    addr: u64,
    owner: ProcessId,
}

impl DiskNatRegister {
    /// Maps a register onto block `addr`, owned by `owner`.
    #[must_use]
    pub fn new(disk: Arc<SanDisk>, addr: u64, owner: ProcessId) -> Self {
        DiskNatRegister { disk, addr, owner }
    }

    /// The owning machine.
    #[must_use]
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// Reads the register on behalf of any machine.
    #[must_use]
    pub fn read(&self, _reader: ProcessId) -> u64 {
        self.disk.read_block(self.addr)
    }

    /// Writes the register.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the owner.
    pub fn write(&self, writer: ProcessId, value: u64) {
        assert_eq!(
            writer, self.owner,
            "machine {writer} attempted to write a disk register owned by {}",
            self.owner
        );
        self.disk.write_block(self.addr, value);
    }
}

/// A 1WnR boolean register stored in a disk block.
#[derive(Debug, Clone)]
pub struct DiskFlagRegister {
    inner: DiskNatRegister,
}

impl DiskFlagRegister {
    /// Maps a flag register onto block `addr`, owned by `owner`.
    #[must_use]
    pub fn new(disk: Arc<SanDisk>, addr: u64, owner: ProcessId) -> Self {
        DiskFlagRegister {
            inner: DiskNatRegister::new(disk, addr, owner),
        }
    }

    /// Reads the flag on behalf of any machine.
    #[must_use]
    pub fn read(&self, reader: ProcessId) -> bool {
        self.inner.read(reader) != 0
    }

    /// Writes the flag.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the owner.
    pub fn write(&self, writer: ProcessId, value: bool) {
        self.inner.write(writer, u64::from(value));
    }
}

/// The Figure-2 register layout mapped onto one shared disk: `PROGRESS[i]`
/// at block `i`, `STOP[i]` at block `n + i`, `SUSPICIONS[i][k]` at block
/// `2n + i·n + k`.
#[derive(Debug)]
pub struct DiskRegisterLayout {
    n: usize,
    /// `PROGRESS[i]`, owned by machine `i`.
    pub progress: Vec<DiskNatRegister>,
    /// `STOP[i]`, owned by machine `i`.
    pub stop: Vec<DiskFlagRegister>,
    /// `SUSPICIONS[i][k]`, row-owned.
    pub suspicions: Vec<Vec<DiskNatRegister>>,
}

impl DiskRegisterLayout {
    /// Lays out the Figure-2 registers for `n` machines on `disk`.
    #[must_use]
    pub fn new(disk: &Arc<SanDisk>, n: usize) -> Self {
        let progress = (0..n)
            .map(|i| DiskNatRegister::new(Arc::clone(disk), i as u64, ProcessId::new(i)))
            .collect();
        let stop = (0..n)
            .map(|i| DiskFlagRegister::new(Arc::clone(disk), (n + i) as u64, ProcessId::new(i)))
            .collect();
        let suspicions = (0..n)
            .map(|i| {
                (0..n)
                    .map(|k| {
                        DiskNatRegister::new(
                            Arc::clone(disk),
                            (2 * n + i * n + k) as u64,
                            ProcessId::new(i),
                        )
                    })
                    .collect()
            })
            .collect();
        DiskRegisterLayout {
            n,
            progress,
            stop,
            suspicions,
        }
    }

    /// Number of machines.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total disk blocks the layout occupies.
    #[must_use]
    pub fn blocks(&self) -> usize {
        2 * self.n + self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_registers::lincheck::{is_linearizable, HistoryRecorder};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn blocks_default_to_zero() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        assert_eq!(disk.read_block(99), 0);
    }

    #[test]
    fn block_roundtrip_and_access_count() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        disk.write_block(4, 123);
        assert_eq!(disk.read_block(4), 123);
        assert_eq!(disk.accesses(), 2);
    }

    #[test]
    fn disk_register_enforces_ownership() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let reg = DiskNatRegister::new(disk, 0, p(1));
        assert_eq!(reg.owner(), p(1));
        reg.write(p(1), 9);
        assert_eq!(reg.read(p(0)), 9);
    }

    #[test]
    #[should_panic(expected = "attempted to write a disk register")]
    fn disk_register_rejects_foreign_writer() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let reg = DiskNatRegister::new(disk, 0, p(1));
        reg.write(p(0), 9);
    }

    #[test]
    fn flag_register_roundtrip() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let flag = DiskFlagRegister::new(disk, 7, p(0));
        assert!(!flag.read(p(1)), "unwritten flag reads false");
        flag.write(p(0), true);
        assert!(flag.read(p(1)));
        flag.write(p(0), false);
        assert!(!flag.read(p(1)));
    }

    #[test]
    fn layout_assigns_distinct_blocks_and_owners() {
        let disk = SanDisk::new(SanLatency::instant(), 1);
        let layout = DiskRegisterLayout::new(&disk, 3);
        assert_eq!(layout.n(), 3);
        assert_eq!(layout.blocks(), 6 + 9);
        // Write through every register; each must land in its own block.
        for i in 0..3 {
            layout.progress[i].write(p(i), 100 + i as u64);
            layout.stop[i].write(p(i), true);
            for k in 0..3 {
                layout.suspicions[i][k].write(p(i), (10 * i + k) as u64);
            }
        }
        for i in 0..3 {
            assert_eq!(layout.progress[i].read(p(0)), 100 + i as u64);
            for k in 0..3 {
                assert_eq!(layout.suspicions[i][k].read(p(0)), (10 * i + k) as u64);
            }
        }
    }

    #[test]
    fn latency_model_is_deterministic_in_value_space() {
        // Same seed → same jitter sequence → identical data outcomes.
        let run = |seed| {
            let disk = SanDisk::new(SanLatency::instant(), seed);
            disk.write_block(0, 5);
            disk.read_block(0)
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn concurrent_disk_register_accesses_linearize() {
        let disk = SanDisk::new(
            SanLatency {
                base: Duration::from_micros(10),
                jitter: Duration::from_micros(20),
            },
            42,
        );
        let reg = DiskNatRegister::new(disk, 0, p(0));
        let rec = Arc::new(HistoryRecorder::new());
        std::thread::scope(|s| {
            {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for v in 1..=15u64 {
                        rec.write(p(0), v, || reg.write(p(0), v));
                    }
                });
            }
            for r in 1..3 {
                let reg = reg.clone();
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..15 {
                        rec.read(p(r), || reg.read(p(r)));
                    }
                });
            }
        });
        let history = Arc::into_inner(rec).unwrap().finish();
        assert!(
            is_linearizable(&history, 0),
            "disk registers must be atomic"
        );
    }
}
