//! Cooperative task runtime: every node loop as a polled task on a
//! sharded deadline wheel.
//!
//! The dedicated-thread host ([`Node::spawn`](crate::Node::spawn)) costs
//! two OS threads per process — at `n = 64` that is 128 kernel threads
//! fighting over the scheduler, which is why the wall-clock backends
//! historically refused every `n > 16` scenario. This module keeps the
//! *task bodies* byte-identical (the same `poll_step`/`poll_scan` entry
//! points on the node core) but multiplexes all `2n` of them onto a small
//! worker pool: each task is re-armed with a wall-clock deadline after
//! every poll, and a timer wheel — the simulator's generic
//! [`TimerWheel`], the engine behind its `EventQueue`, here keyed by
//! microseconds instead of virtual ticks — hands a worker the next due
//! task in O(1).
//!
//! # Sharding
//!
//! One shared wheel caps the runtime at `n = 128`: every pop and re-arm
//! crosses one global lock, and one worker cannot retire 512 task polls
//! per 100 µs tick — exactly the shared-structure contention the
//! write-contention lower bounds (Alistarh–Gelashvili, PAPERS.md) point
//! at. So the queue is **sharded per worker**: worker `w` owns a private
//! [`DeadlineQueue`] holding the tasks affine to it (node `i`'s step and
//! timer loops both live on shard `i mod workers`, so a node's two loops
//! never cross shards), pops it under a lock no other thread touches in
//! the common case, and parks on a **per-shard condvar** that only its
//! own re-arms (and targeted help requests, below) ever notify — a
//! sibling arming a far timer cannot busy-wake an idle worker.
//!
//! Fairness, the property the AWB assumption actually needs, still comes
//! from pop order: each shard serves exact `(deadline, arming order)`
//! sequence, and two mechanisms keep that discipline *global* under
//! overload instead of per-shard:
//!
//! * **Overdue-task stealing** — a worker with nothing due locally scans
//!   sibling shards for tasks at least `STEAL_LAG_SLOTS` slots overdue
//!   and runs the earliest one on the victim's behalf (the task re-arms
//!   back into its home shard, so affinity is stable). A worker that pops
//!   a task and still sees an overdue backlog behind it nudges exactly
//!   one sibling's condvar to come help, so idle capacity drains hot
//!   shards without a thundering herd.
//! * **Adaptive tick** — under sustained overload (dispatch lag beyond
//!   `STRETCH_LAG_SLOTS` slots, poll after poll) the effective slot
//!   width stretches by powers of two up to `STRETCH_MAX_SHIFT`:
//!   re-arm deadlines quantize to coarser slot multiples, which batches
//!   wakeups into bigger same-key FIFO runs — the wheel degrades into
//!   explicit round-robin over the overdue set rather than silently
//!   falling further behind. Keys stay in `SLOT_US` units throughout,
//!   so stretched and unstretched deadlines remain globally comparable,
//!   and rounding still only ever moves a deadline *later*. The stretch
//!   decays once dispatch runs on time again.
//!
//! Under overload the pool therefore degrades into round-robin over the
//! overdue tasks instead of starving anyone — a *different* fairness
//! regime from the OS scheduler's, which is exactly what makes coop
//! outcomes worth comparing against the thread backend.
//!
//! Use [`Cluster::start_coop`](crate::Cluster::start_coop) to run an
//! election on this substrate; the scenario crate's `CoopDriver` wires it
//! into the declarative scenario suite.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_sim::wheel::TimerWheel;

use crate::node::{NodeConfig, NodeCore};

/// Wheel granularity: deadlines are quantized up to 64 µs slots. Coarser
/// than the simulator's 1-tick slots because wall-clock deadlines are
/// real-valued; 64 µs is well under every pacing profile's step interval,
/// so quantization never reorders two meaningfully different deadlines.
const SLOT_US: u64 = 64;

/// A sibling shard's head becomes stealable once it is at least this many
/// slots overdue. The owner keeps first claim on just-due work (preserving
/// its exact local order); only work that is demonstrably backing up
/// migrates, so steals reorder the global sequence by at most this window
/// plus the dispatch lag.
const STEAL_LAG_SLOTS: u64 = 2;

/// Dispatch lag (slots between a task's deadline and the moment a worker
/// actually popped it) beyond which a poll counts as overloaded for the
/// adaptive tick.
const STRETCH_LAG_SLOTS: u64 = 8;

/// Maximum slot stretch: the effective slot width grows by powers of two
/// up to `SLOT_US << STRETCH_MAX_SHIFT` (1 ms) under sustained overload.
const STRETCH_MAX_SHIFT: u32 = 4;

/// Consecutive overloaded dispatches before the slot stretches one notch.
const STRETCH_UP_STREAK: u32 = 64;

/// Consecutive on-time dispatches before the slot relaxes one notch —
/// deliberately slower than the stretch so a marginal load does not
/// oscillate.
const STRETCH_DOWN_STREAK: u32 = 256;

/// Park bound while the head deadline is unrepresentably far (astronomic
/// timeouts like the step-clock variant's `NEVER_TIMEOUT`): stay
/// notifiable, re-check as a backstop.
const FAR_PARK: Duration = Duration::from_secs(3_600);

/// A timer wheel of wall-clock deadlines: one shard of the cooperative
/// runtime's ready queue (and, with a single worker, all of it).
///
/// This is the runtime's instantiation of the simulator's generic
/// [`TimerWheel`] (one shared implementation of the bucket wheel, the
/// far/overdue heap fallback, and the exact `(key, seq)` pop order), keyed
/// by quantized microseconds-since-start and carrying a task id instead of
/// a simulation event. Pop order is **exactly** the order a reference
/// `(key, seq)` heap would produce; a seeded property test in this module
/// pins that equivalence on this instantiation too, and a second one pins
/// the k-shard + stealing composition against the single-wheel reference.
///
/// # Examples
///
/// ```
/// use omega_runtime::coop::DeadlineQueue;
///
/// let mut q = DeadlineQueue::new();
/// q.push(50, 0); // task 0 due at key 50
/// q.push(20, 1); // task 1 due earlier
/// assert_eq!(q.pop(), Some((20, 1)));
/// assert_eq!(q.pop(), Some((50, 0)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct DeadlineQueue {
    wheel: TimerWheel<usize>,
}

impl DeadlineQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        DeadlineQueue {
            wheel: TimerWheel::new(),
        }
    }

    /// Schedules `task` to wake at `key`. Entries pushed earlier sort
    /// first among equal keys.
    pub fn push(&mut self, key: u64, task: usize) {
        self.wheel.push(key, task);
    }

    /// Removes and returns the earliest `(key, task)`.
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.wheel.pop().map(|(key, _seq, task)| (key, task))
    }

    /// The key of the earliest pending wakeup.
    #[must_use]
    pub fn peek_key(&self) -> Option<u64> {
        self.wheel.peek_key()
    }

    /// Number of pending wakeups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no wakeups are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

/// An application task multiplexed on the cooperative wheel *alongside*
/// the node loops — e.g. a replicated service's per-node work loop or a
/// client workload pump.
///
/// The contract mirrors the node tasks': each [`poll`](CoopTask::poll) does
/// one bounded chunk of work and returns the wall-clock deadline it wants
/// to run next at, or `None` to retire permanently. Polls are serialized
/// per task (the scheduler takes the task out of its slot while it runs),
/// so `&mut self` state needs no further synchronization; deadlines share
/// the exact `(deadline, arming order)` fairness of the node loops, which
/// is the point — client work competes with election work for the same
/// workers, as it would on a real box.
pub trait CoopTask: Send {
    /// Runs one chunk; returns the next deadline or `None` to retire.
    fn poll(&mut self) -> Option<Instant>;
}

/// One multiplexed task: a node loop, or an external application task.
enum Task {
    /// The `T2` heartbeat loop: poll, re-arm `step_interval` later.
    Step(Arc<NodeCore>),
    /// The `T3` timer loop: poll at the armed deadline, re-arm `timeout ×
    /// tick` later.
    Timer(Arc<NodeCore>),
    /// An application task with self-chosen deadlines.
    External(Box<dyn CoopTask>),
}

impl Task {
    /// Executes one poll; returns the next wall-clock deadline, or `None`
    /// when the task retires (node halted, or external task done).
    fn run(&mut self, config: &NodeConfig) -> Option<Instant> {
        match self {
            Task::Step(core) => core
                .poll_step()
                .then(|| Instant::now() + config.step_interval),
            Task::Timer(core) => core
                .poll_scan()
                .map(|timeout| Instant::now() + config.timer_span(timeout)),
            Task::External(task) => task.poll(),
        }
    }
}

/// Pacing and sizing of a cooperative runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoopConfig {
    /// Per-node pacing — the same knobs the dedicated-thread host takes,
    /// honored with the same meaning.
    pub node: NodeConfig,
    /// Worker threads multiplexing the task set, one wheel shard each.
    /// One worker (the default) makes the whole cluster single-threaded
    /// and maximally fair; a pool shards the queue and adds parallelism
    /// without returning to two-threads-per-node.
    pub workers: usize,
}

impl Default for CoopConfig {
    fn default() -> Self {
        CoopConfig {
            node: NodeConfig::default(),
            workers: 1,
        }
    }
}

impl CoopConfig {
    /// A single-worker runtime at the given node pacing.
    #[must_use]
    pub fn with_node(node: NodeConfig) -> Self {
        CoopConfig { node, workers: 1 }
    }
}

/// Observability counters for one shard's worker, snapshotted by
/// [`CoopRuntime::shard_stats`]. The per-shard parking regression test
/// pins the wakeup discipline on these; benches may report them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Tasks the owning worker dispatched from its local shard.
    pub polls: u64,
    /// Overdue tasks this worker ran on a sibling shard's behalf.
    pub steals: u64,
    /// Times the owner's park returned (notify or timeout). An idle
    /// worker next to a busy sibling should accrue none of these.
    pub wakes: u64,
}

/// Adaptive slot stretch shared by all shards: sustained dispatch lag
/// widens the effective slot, on-time dispatch narrows it back. Keys stay
/// in [`SLOT_US`] units at every stretch level, so entries armed under
/// different stretches remain comparable on the same wheel.
struct TickStretch {
    shift: AtomicU32,
    overdue_streak: AtomicU32,
    ontime_streak: AtomicU32,
}

impl TickStretch {
    fn new() -> Self {
        TickStretch {
            shift: AtomicU32::new(0),
            overdue_streak: AtomicU32::new(0),
            ontime_streak: AtomicU32::new(0),
        }
    }

    fn shift(&self) -> u32 {
        self.shift.load(Ordering::Relaxed)
    }

    /// Records the dispatch lag of one pop (slots between deadline and
    /// dispatch) and adapts the stretch. Mild lag — above zero but within
    /// [`STRETCH_LAG_SLOTS`] — is scheduling jitter and moves neither
    /// streak.
    fn observe(&self, lag_slots: u64) {
        if lag_slots > STRETCH_LAG_SLOTS {
            self.ontime_streak.store(0, Ordering::Relaxed);
            if self.overdue_streak.fetch_add(1, Ordering::Relaxed) + 1 >= STRETCH_UP_STREAK {
                self.overdue_streak.store(0, Ordering::Relaxed);
                let _ = self
                    .shift
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                        (s < STRETCH_MAX_SHIFT).then_some(s + 1)
                    });
            }
        } else if lag_slots == 0 {
            self.overdue_streak.store(0, Ordering::Relaxed);
            if self.ontime_streak.fetch_add(1, Ordering::Relaxed) + 1 >= STRETCH_DOWN_STREAK {
                self.ontime_streak.store(0, Ordering::Relaxed);
                let _ = self
                    .shift
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                        (s > 0).then(|| s - 1)
                    });
            }
        }
    }
}

#[derive(Default)]
struct ShardCounters {
    polls: AtomicU64,
    steals: AtomicU64,
    wakes: AtomicU64,
}

struct ShardState {
    /// Deadline wheel over this shard's tasks, keyed in [`SLOT_US`]
    /// slots, carrying indices into `tasks`.
    queue: DeadlineQueue,
    /// Task slab, shard-local ids; `None` while a task executes on some
    /// worker or after it retired.
    tasks: Vec<Option<Task>>,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Parker for the owning worker only — re-arms notify it exactly when
    /// the shard's head moved earlier, and overloaded siblings nudge it
    /// to come steal; nothing else ever wakes it.
    cv: Condvar,
    counters: ShardCounters,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn try_lock(&self) -> Option<MutexGuard<'_, ShardState>> {
        match self.state.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

struct Inner {
    /// Origin of the deadline keys: key `k` means `start + k × SLOT_US µs`.
    start: Instant,
    config: NodeConfig,
    shards: Vec<Shard>,
    /// Tasks not yet retired, pool-wide (executing tasks count as live).
    live: AtomicUsize,
    stop: AtomicBool,
    stretch: TickStretch,
    /// Round-robin cursor spreading help requests across siblings.
    help_cursor: AtomicUsize,
}

/// Quantizes a wall-clock deadline to a wheel key (slots of [`SLOT_US`]
/// past `start`), rounding up so a wakeup never fires before its deadline.
/// Under stretch the deadline rounds up to the next multiple of
/// `SLOT_US << stretch_shift`; the key is still expressed in plain
/// [`SLOT_US`] slots, so keys armed under different stretches compare.
fn key_for(start: Instant, deadline: Instant, stretch_shift: u32) -> u64 {
    let micros = u64::try_from(
        deadline
            .saturating_duration_since(start)
            .as_micros()
            .min(u128::from(u64::MAX)),
    )
    .expect("clamped to u64::MAX");
    micros.div_ceil(SLOT_US << stretch_shift) << stretch_shift
}

/// The wall-clock instant a key stands for; `None` when it lies beyond
/// what `Instant` arithmetic can represent (astronomic timeouts like the
/// step-clock variant's `NEVER_TIMEOUT`).
fn wake_time(start: Instant, key: u64) -> Option<Instant> {
    let micros = key.checked_mul(SLOT_US)?;
    start.checked_add(Duration::from_micros(micros))
}

impl Inner {
    fn key_of(&self, deadline: Instant) -> u64 {
        key_for(self.start, deadline, self.stretch.shift())
    }

    /// The current wall clock in whole elapsed slots (rounded down: a key
    /// equal to `now_key` is due).
    fn now_key(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros().min(u128::from(u64::MAX)))
            .expect("clamped to u64::MAX")
            / SLOT_US
    }

    fn wake_time(&self, key: u64) -> Option<Instant> {
        wake_time(self.start, key)
    }

    fn notify_all(&self) {
        for shard in &self.shards {
            shard.cv.notify_all();
        }
    }

    /// Nudges one sibling of `me` to come steal: called when `me`'s owner
    /// popped a task and still saw an overdue backlog behind it. Exactly
    /// one targeted notify (round-robin over siblings) — idle workers next
    /// to a healthy pool stay parked.
    fn ask_for_help(&self, me: usize) {
        let k = self.shards.len();
        if k <= 1 {
            return;
        }
        let mut target = self.help_cursor.fetch_add(1, Ordering::Relaxed) % k;
        if target == me {
            target = (target + 1) % k;
        }
        self.shards[target].cv.notify_one();
    }

    /// Runs at most one overdue task from a sibling of `me` on its behalf.
    /// Returns whether a task was run. Siblings are inspected with
    /// `try_lock` — a contended shard is being served by its own worker,
    /// which is not the starvation stealing exists to fix.
    fn try_steal(&self, me: usize) -> bool {
        let k = self.shards.len();
        if k <= 1 {
            return false;
        }
        let now_key = self.now_key();
        for offset in 1..k {
            let victim = (me + offset) % k;
            let Some(mut state) = self.shards[victim].try_lock() else {
                continue;
            };
            let Some(key) = state.queue.peek_key() else {
                continue;
            };
            if key.saturating_add(STEAL_LAG_SLOTS) > now_key {
                continue; // the owner keeps first claim on just-due work
            }
            let (key, id) = state.queue.pop().expect("peeked a key");
            let Some(mut task) = state.tasks[id].take() else {
                continue; // stale entry for a retired slot
            };
            drop(state);
            self.shards[me]
                .counters
                .steals
                .fetch_add(1, Ordering::Relaxed);
            self.stretch.observe(now_key - key);
            let rearm = task.run(&self.config);
            self.finish(victim, id, task, rearm);
            return true;
        }
        false
    }

    /// Returns a just-run task to its home shard (re-arm) or retires it.
    /// The re-arm notifies the home shard's owner exactly when the pushed
    /// deadline became the shard's new head — a worker parked toward a
    /// later deadline must re-aim, anyone else needs nothing.
    fn finish(&self, home: usize, id: usize, task: Task, rearm: Option<Instant>) {
        match rearm {
            Some(deadline) => {
                let key = self.key_of(deadline);
                let shard = &self.shards[home];
                let mut state = shard.lock();
                state.tasks[id] = Some(task);
                state.queue.push(key, id);
                let new_head = state.queue.peek_key() == Some(key);
                drop(state);
                if new_head {
                    shard.cv.notify_one();
                }
            }
            None => {
                drop(task);
                if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Every task retired (all nodes crashed or stopped):
                    // wake the whole pool so it drains.
                    self.notify_all();
                }
            }
        }
    }
}

fn worker_loop(inner: &Inner, me: usize) {
    let shard = &inner.shards[me];
    let mut state = shard.lock();
    loop {
        if inner.stop.load(Ordering::Acquire) || inner.live.load(Ordering::Acquire) == 0 {
            drop(state);
            // Propagate the drain: siblings may be parked with no tasks
            // left to notify them.
            inner.notify_all();
            return;
        }
        // Dispatch the local head if it is due.
        let head = state.queue.peek_key();
        if let Some(key) = head {
            let due_now = match inner.wake_time(key) {
                Some(due) => due.saturating_duration_since(Instant::now()).is_zero(),
                None => false,
            };
            if due_now {
                let (key, id) = state.queue.pop().expect("peeked a key");
                let Some(mut task) = state.tasks[id].take() else {
                    continue; // stale entry for a retired slot
                };
                let now_key = inner.now_key();
                // Backlog behind the popped task: overdue work this worker
                // cannot reach before finishing the poll — recruit help.
                let backlog = state
                    .queue
                    .peek_key()
                    .is_some_and(|k| k.saturating_add(STEAL_LAG_SLOTS) <= now_key);
                // Poll outside the shard lock: the task body takes the
                // node's process lock and touches shared registers, and
                // stealers must be able to inspect the shard meanwhile.
                drop(state);
                shard.counters.polls.fetch_add(1, Ordering::Relaxed);
                inner.stretch.observe(now_key.saturating_sub(key));
                if backlog {
                    inner.ask_for_help(me);
                }
                let rearm = task.run(&inner.config);
                inner.finish(me, id, task, rearm);
                state = shard.lock();
                continue;
            }
        }
        // Nothing due locally: lend a hand to an overloaded sibling.
        drop(state);
        let stole = inner.try_steal(me);
        state = shard.lock();
        if stole || state.queue.peek_key() != head {
            // Re-evaluate: a re-arm landed while the lock was released
            // (its notify had no parked waiter to catch).
            continue;
        }
        // Park toward the local head (or indefinitely on an empty shard —
        // only a re-arm, a help request, a retire-to-zero, or shutdown is
        // worth waking for). The head re-check above happened under the
        // lock held into the wait, so no wakeup can slip between them.
        let wait = match head {
            Some(key) => match inner.wake_time(key) {
                Some(due) => {
                    let until = due.saturating_duration_since(Instant::now());
                    if until.is_zero() {
                        continue; // became due while stealing
                    }
                    Some(until)
                }
                None => Some(FAR_PARK),
            },
            None => None,
        };
        state = match wait {
            Some(wait) => {
                shard
                    .cv
                    .wait_timeout(state, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shard.cv.wait(state).unwrap_or_else(PoisonError::into_inner),
        };
        shard.counters.wakes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A small pool of worker threads cooperatively scheduling all node loops
/// of a cluster, one [`DeadlineQueue`] shard per worker with overdue-task
/// stealing between them.
///
/// Built by [`Cluster::start_coop`](crate::Cluster::start_coop); owns
/// nothing algorithm-visible — crash injection, leader queries, and
/// statistics all go through the same [`Node`](crate::Node)/cluster
/// surface as the dedicated-thread substrate.
pub struct CoopRuntime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl CoopRuntime {
    /// Starts the runtime hosting one step task and one timer task per
    /// core. The timer tasks arm exactly like the thread host: first
    /// deadline `initial_timeout × tick` from now; step tasks are due
    /// immediately. Node `i`'s two tasks land on shard `i mod workers`.
    pub(crate) fn start(cores: &[Arc<NodeCore>], config: CoopConfig) -> Self {
        Self::start_with_tasks(cores, config, Vec::new())
    }

    /// [`start`](Self::start), plus `extras` — application tasks
    /// ([`CoopTask`]) multiplexed on the same sharded wheel as the node
    /// loops, each due immediately for its first poll and distributed
    /// round-robin over the shards after the node tasks.
    pub(crate) fn start_with_tasks(
        cores: &[Arc<NodeCore>],
        config: CoopConfig,
        extras: Vec<Box<dyn CoopTask>>,
    ) -> Self {
        assert!(config.workers > 0, "a runtime needs at least one worker");
        let start = Instant::now();
        let live = cores.len() * 2 + extras.len();
        let mut states: Vec<ShardState> = (0..config.workers)
            .map(|_| ShardState {
                queue: DeadlineQueue::new(),
                tasks: Vec::new(),
            })
            .collect();
        {
            let mut seed = |home: usize, task: Task, key: u64| {
                let state = &mut states[home];
                let id = state.tasks.len();
                state.tasks.push(Some(task));
                state.queue.push(key, id);
            };
            for (i, core) in cores.iter().enumerate() {
                let home = i % config.workers;
                seed(home, Task::Step(Arc::clone(core)), 0);
                let first = Instant::now() + config.node.timer_span(core.initial_timeout());
                seed(
                    home,
                    Task::Timer(Arc::clone(core)),
                    key_for(start, first, 0),
                );
            }
            for (j, task) in extras.into_iter().enumerate() {
                seed((cores.len() + j) % config.workers, Task::External(task), 0);
            }
        }

        let inner = Arc::new(Inner {
            start,
            config: config.node,
            shards: states
                .into_iter()
                .map(|state| Shard {
                    state: Mutex::new(state),
                    cv: Condvar::new(),
                    counters: ShardCounters::default(),
                })
                .collect(),
            live: AtomicUsize::new(live),
            stop: AtomicBool::new(false),
            stretch: TickStretch::new(),
            help_cursor: AtomicUsize::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("coop-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn coop worker")
            })
            .collect();
        CoopRuntime { inner, workers }
    }

    /// Number of worker threads (= wheel shards).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Per-shard dispatch/steal/wake counters, in worker order.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .map(|shard| ShardStats {
                polls: shard.counters.polls.load(Ordering::Relaxed),
                steals: shard.counters.steals.load(Ordering::Relaxed),
                wakes: shard.counters.wakes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The adaptive tick's current stretch shift: effective slot width is
    /// `64 µs << shift`. Zero when dispatch keeps up.
    #[must_use]
    pub fn stretch_shift(&self) -> u32 {
        self.inner.stretch.shift()
    }

    /// Stops the workers and joins them. Node state is untouched — callers
    /// halt the nodes first, exactly as with dedicated threads.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            // Taking each lock orders the store before that worker's next
            // check; notifying under it cannot race the worker into a
            // park that misses the stop.
            drop(shard.lock());
            shard.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CoopRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for CoopRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queued: usize = self.inner.shards.iter().map(|s| s.lock().queue.len()).sum();
        f.debug_struct("CoopRuntime")
            .field("workers", &self.workers.len())
            .field("live_tasks", &self.inner.live.load(Ordering::Relaxed))
            .field("queued", &queued)
            .field("stretch_shift", &self.stretch_shift())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_sim::wheel::WHEEL_SLOTS;
    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_key_order_with_fifo_ties() {
        let mut q = DeadlineQueue::new();
        q.push(10, 0);
        q.push(1, 1);
        q.push(10, 2);
        q.push(5, 3);
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 1), (5, 3), (10, 0), (10, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_and_overdue_keys_route_through_the_heap() {
        let mut q = DeadlineQueue::new();
        let far = WHEEL_SLOTS as u64 * 7 + 3;
        q.push(far, 0);
        q.push(2, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_key(), Some(2));
        assert_eq!(q.pop(), Some((2, 1)));
        // Cursor advanced; pushing behind it is overdue and pops first.
        q.push(0, 2);
        assert_eq!(q.pop(), Some((0, 2)));
        assert_eq!(q.pop(), Some((far, 0)));
    }

    #[test]
    fn astronomically_far_keys_do_not_wedge_the_queue() {
        let mut q = DeadlineQueue::new();
        q.push(u64::MAX / SLOT_US, 0);
        q.push(7, 1);
        assert_eq!(q.pop(), Some((7, 1)));
        assert_eq!(q.peek_key(), Some(u64::MAX / SLOT_US));
    }

    /// The single-wheel property test: a seeded interleaving of pushes and
    /// pops must pop in exactly the order of a reference `(key, seq)`
    /// binary heap — near keys, far keys, overdue keys, and ties alike.
    #[test]
    fn seeded_wake_order_matches_reference_deadline_heap() {
        #[derive(PartialEq, Eq)]
        struct RefEntry {
            key: u64,
            seq: u64,
            task: usize,
        }
        impl Ord for RefEntry {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                (other.key, other.seq).cmp(&(self.key, self.seq))
            }
        }
        impl PartialOrd for RefEntry {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }

        for seed in 1u64..=20 {
            let mut rng = seed;
            let mut next = move || {
                // xorshift64*: deterministic, dependency-free.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut queue = DeadlineQueue::new();
            let mut reference: BinaryHeap<RefEntry> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut last_popped = 0u64;
            for op in 0..2_000 {
                if next() % 3 != 0 || queue.is_empty() {
                    // Push: mostly near keys, sometimes far, sometimes
                    // overdue relative to what was already popped.
                    let key = match next() % 10 {
                        0 => last_popped.saturating_sub(next() % 50), // overdue
                        1..=2 => last_popped + next() % (WHEEL_SLOTS as u64 * 20), // far
                        _ => last_popped + next() % 500,              // near
                    };
                    let task = (op % 97) as usize;
                    queue.push(key, task);
                    reference.push(RefEntry { key, seq, task });
                    seq += 1;
                } else {
                    let got = queue.pop();
                    let want = reference.pop().map(|e| (e.key, e.task));
                    assert_eq!(got, want, "seed {seed}, op {op}");
                    if let Some((k, _)) = got {
                        last_popped = k;
                    }
                }
            }
            while let Some(want) = reference.pop() {
                assert_eq!(
                    queue.pop(),
                    Some((want.key, want.task)),
                    "seed {seed} drain"
                );
            }
            assert!(queue.is_empty());
        }
    }

    /// The sharded property test: k shards with overdue stealing versus
    /// the single-wheel reference. No task may be lost or double-polled,
    /// each shard's projected pop order must match the reference exactly,
    /// and the merged global order may deviate from `(deadline, seq)`
    /// only within the steal-window slack.
    #[test]
    fn sharded_pops_with_stealing_match_single_wheel_up_to_steal_slack() {
        // `now` advances in bounded increments and every due task drains
        // before the next advance, so any inversion the interleaving (or
        // a steal) produces is confined to one drain window.
        const MAX_ADVANCE: u64 = 64;
        const SLACK: u64 = MAX_ADVANCE + STEAL_LAG_SLOTS;

        let mut total_steals = 0u64;
        for seed in 1u64..=12 {
            for k in [2usize, 3, 4] {
                let mut rng = seed.wrapping_mul(k as u64).wrapping_add(0x9e37);
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                // Identical push schedule into both structures: task t is
                // affine to shard t % k.
                let tasks = 120usize;
                let mut shards: Vec<DeadlineQueue> = (0..k).map(|_| DeadlineQueue::new()).collect();
                let mut reference = DeadlineQueue::new();
                for t in 0..tasks {
                    let key = next() % 400;
                    shards[t % k].push(key, t);
                    reference.push(key, t);
                }

                // Reference order: one wheel, exact (key, seq).
                let mut ref_order = Vec::with_capacity(tasks);
                while let Some(entry) = reference.pop() {
                    ref_order.push(entry);
                }

                // Sharded schedule: each round, `now` advances a bounded
                // step, then workers drain everything due — popping their
                // own shard in order, or stealing a sibling's sufficiently
                // overdue head when locally idle. A randomly "slow" worker
                // sits rounds out, forcing real backlogs to steal from.
                let mut now = 0u64;
                let mut popped: Vec<(u64, usize)> = Vec::with_capacity(tasks);
                let mut steals = 0u64;
                while popped.len() < tasks {
                    now += next() % MAX_ADVANCE + 1;
                    loop {
                        let mut progressed = false;
                        for w in 0..k {
                            if next() % 3 == 0 {
                                continue; // this worker is slow this pass
                            }
                            let due_local = shards[w].peek_key().is_some_and(|key| key <= now);
                            if due_local {
                                popped.push(shards[w].pop().expect("peeked"));
                                progressed = true;
                                continue;
                            }
                            // Locally idle: steal an overdue sibling head.
                            for offset in 1..k {
                                let victim = (w + offset) % k;
                                let stealable = shards[victim]
                                    .peek_key()
                                    .is_some_and(|key| key + STEAL_LAG_SLOTS <= now);
                                if stealable {
                                    popped.push(shards[victim].pop().expect("peeked"));
                                    steals += 1;
                                    progressed = true;
                                    break;
                                }
                            }
                        }
                        let any_due =
                            (0..k).any(|w| shards[w].peek_key().is_some_and(|key| key <= now));
                        if !any_due {
                            break;
                        }
                        // A fully slow pass must not count as drained.
                        let _ = progressed;
                    }
                }
                total_steals += steals;

                // No task lost or double-polled.
                let mut seen = vec![false; tasks];
                for &(_, t) in &popped {
                    assert!(!seen[t], "seed {seed} k {k}: task {t} double-polled");
                    seen[t] = true;
                }
                assert!(seen.iter().all(|&s| s), "seed {seed} k {k}: task lost");

                // Per-shard projection is exactly the reference projection:
                // stealing takes a shard's head, so shard-local (key, seq)
                // order survives any interleaving.
                for shard in 0..k {
                    let got: Vec<_> = popped.iter().filter(|&&(_, t)| t % k == shard).collect();
                    let want: Vec<_> = ref_order.iter().filter(|&&(_, t)| t % k == shard).collect();
                    assert_eq!(got, want, "seed {seed} k {k}: shard {shard} order");
                }

                // Global order holds up to the steal-window slack.
                for i in 0..popped.len() {
                    for j in i + 1..popped.len() {
                        assert!(
                            popped[i].0 <= popped[j].0 + SLACK,
                            "seed {seed} k {k}: inversion beyond slack: \
                             {:?} before {:?}",
                            popped[i],
                            popped[j],
                        );
                    }
                }
            }
        }
        assert!(total_steals > 0, "the schedule must exercise stealing");
    }

    #[test]
    fn key_quantization_rounds_up_and_wake_time_inverts() {
        let start = Instant::now();
        let deadline = start + Duration::from_micros(SLOT_US * 3 + 1);
        let key = key_for(start, deadline, 0);
        assert_eq!(key, 4, "keys round up so wakeups are never early");
        assert!(wake_time(start, key).unwrap() >= deadline);
        // Unrepresentable futures collapse to None instead of panicking.
        assert_eq!(wake_time(start, u64::MAX), None);
    }

    #[test]
    fn stretched_keys_stay_in_plain_slots_and_never_fire_early() {
        let start = Instant::now();
        let deadline = start + Duration::from_micros(SLOT_US * 3 + 1);
        // Stretch shift 2: slots quantize to multiples of 4 × 64 µs.
        let key = key_for(start, deadline, 2);
        assert_eq!(key, 4, "rounded up to the next stretched slot boundary");
        assert!(key.is_multiple_of(4));
        assert!(wake_time(start, key).unwrap() >= deadline);
        let later = start + Duration::from_micros(SLOT_US * 5);
        assert_eq!(key_for(start, later, 2), 8);
        // A stretched key and an unstretched key remain comparable on the
        // same wheel: both count plain SLOT_US slots.
        assert!(key_for(start, later, 0) <= key_for(start, later, 2));
    }

    #[test]
    fn tick_stretch_widens_under_sustained_overload_and_decays() {
        let stretch = TickStretch::new();
        assert_eq!(stretch.shift(), 0);
        // Mild jitter moves nothing.
        for _ in 0..10 * STRETCH_UP_STREAK {
            stretch.observe(STRETCH_LAG_SLOTS);
        }
        assert_eq!(stretch.shift(), 0, "jitter within the lag budget");
        // Sustained overload stretches, one notch per streak, capped.
        for _ in 0..STRETCH_UP_STREAK {
            stretch.observe(STRETCH_LAG_SLOTS + 1);
        }
        assert_eq!(stretch.shift(), 1);
        for _ in 0..10 * STRETCH_UP_STREAK {
            stretch.observe(1_000);
        }
        assert_eq!(stretch.shift(), STRETCH_MAX_SHIFT, "stretch is capped");
        // An interrupted on-time run does not relax the slot…
        for _ in 0..STRETCH_DOWN_STREAK - 1 {
            stretch.observe(0);
        }
        stretch.observe(STRETCH_LAG_SLOTS + 1);
        for _ in 0..STRETCH_DOWN_STREAK - 1 {
            stretch.observe(0);
        }
        assert_eq!(stretch.shift(), STRETCH_MAX_SHIFT);
        // …but a full one does, one notch per streak.
        stretch.observe(0);
        assert_eq!(stretch.shift(), STRETCH_MAX_SHIFT - 1);
        for _ in 0..STRETCH_MAX_SHIFT as usize * STRETCH_DOWN_STREAK as usize {
            stretch.observe(0);
        }
        assert_eq!(stretch.shift(), 0, "full decay back to the base slot");
    }

    /// A counting external task: polls bump a shared counter, re-arming at
    /// a fixed cadence (or retiring after `polls_before_retire`).
    struct Beat {
        count: Arc<AtomicU64>,
        cadence: Duration,
    }

    impl CoopTask for Beat {
        fn poll(&mut self) -> Option<Instant> {
            self.count.fetch_add(1, Ordering::Relaxed);
            Some(Instant::now() + self.cadence)
        }
    }

    /// The per-shard parking regression test: a far timer armed on one
    /// shard must not busy-wake the sibling worker while the other shard
    /// keeps re-arming. Under the old single-condvar pool, every re-arm's
    /// notify could land on whichever worker was parked — including the
    /// one sleeping toward the far deadline — so its wake count grew with
    /// its sibling's poll rate.
    #[test]
    fn far_timer_on_one_shard_does_not_busy_wake_the_sibling() {
        let fast = Arc::new(AtomicU64::new(0));
        let far = Arc::new(AtomicU64::new(0));
        let extras: Vec<Box<dyn CoopTask>> = vec![
            // Extra 0 → shard 0: re-arms steadily, well inside the steal
            // window so nothing it does is stealable.
            Box::new(Beat {
                count: Arc::clone(&fast),
                cadence: Duration::from_millis(20),
            }),
            // Extra 1 → shard 1: one poll, then a deadline hours out.
            Box::new(Beat {
                count: Arc::clone(&far),
                cadence: Duration::from_secs(3_600),
            }),
        ];
        let mut runtime = CoopRuntime::start_with_tasks(
            &[],
            CoopConfig {
                node: NodeConfig::default(),
                workers: 2,
            },
            extras,
        );
        std::thread::sleep(Duration::from_millis(300));
        let stats = runtime.shard_stats();
        runtime.shutdown();
        assert!(
            fast.load(Ordering::Relaxed) >= 5,
            "the fast shard kept polling: {stats:?}"
        );
        assert_eq!(
            far.load(Ordering::Relaxed),
            1,
            "the far timer fired exactly its initial poll"
        );
        assert!(
            stats[1].wakes <= 3,
            "sibling re-arms must not wake the far shard's worker: {stats:?}"
        );
    }

    #[test]
    fn worker_pool_drains_and_steals_keep_every_task_running() {
        // Four shards, eight short-cadence tasks: the pool must keep all
        // of them polling (stealing covers any shard whose owner lags on
        // this 1-CPU-friendly schedule), then drain cleanly on shutdown.
        let counts: Vec<Arc<AtomicU64>> = (0..8).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let extras: Vec<Box<dyn CoopTask>> = counts
            .iter()
            .map(|count| {
                Box::new(Beat {
                    count: Arc::clone(count),
                    cadence: Duration::from_micros(500),
                }) as Box<dyn CoopTask>
            })
            .collect();
        let mut runtime = CoopRuntime::start_with_tasks(
            &[],
            CoopConfig {
                node: NodeConfig::default(),
                workers: 4,
            },
            extras,
        );
        assert_eq!(runtime.workers(), 4);
        std::thread::sleep(Duration::from_millis(200));
        runtime.shutdown();
        for (i, count) in counts.iter().enumerate() {
            assert!(
                count.load(Ordering::Relaxed) > 10,
                "task {i} starved under the sharded pool"
            );
        }
    }
}
