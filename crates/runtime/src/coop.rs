//! Cooperative task runtime: every node loop as a polled task on a
//! deadline wheel.
//!
//! The dedicated-thread host ([`Node::spawn`](crate::Node::spawn)) costs
//! two OS threads per process — at `n = 64` that is 128 kernel threads
//! fighting over the scheduler, which is why the wall-clock backends
//! historically refused every `n > 16` scenario. This module keeps the
//! *task bodies* byte-identical (the same `poll_step`/`poll_scan` entry
//! points on the node core) but multiplexes all `2n` of them onto one
//! worker thread (or a small pool): each task is re-armed with a wall-clock
//! deadline after every poll, and a timer wheel — the simulator's generic
//! [`TimerWheel`], the engine behind its `EventQueue`, here keyed by
//! microseconds instead of virtual ticks — hands the worker the next due
//! task in O(1).
//!
//! Fairness, the property the AWB assumption actually needs, comes from the
//! pop order: deadlines are served in exact `(deadline, arming order)`
//! sequence, so under overload (deadlines in the past) the runtime degrades
//! into round-robin over the overdue tasks instead of starving anyone —
//! a *different* fairness regime from the OS scheduler's, which is exactly
//! what makes coop outcomes worth comparing against the thread backend.
//!
//! Use [`Cluster::start_coop`](crate::Cluster::start_coop) to run an
//! election on this substrate; the scenario crate's `CoopDriver` wires it
//! into the declarative scenario suite.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use omega_sim::wheel::TimerWheel;

use crate::node::{NodeConfig, NodeCore};

/// Wheel granularity: deadlines are quantized up to 64 µs slots. Coarser
/// than the simulator's 1-tick slots because wall-clock deadlines are
/// real-valued; 64 µs is well under every pacing profile's step interval,
/// so quantization never reorders two meaningfully different deadlines.
const SLOT_US: u64 = 64;

/// A timer wheel of wall-clock deadlines: the cooperative runtime's ready
/// queue.
///
/// This is the runtime's instantiation of the simulator's generic
/// [`TimerWheel`] (one shared implementation of the bucket wheel, the
/// far/overdue heap fallback, and the exact `(key, seq)` pop order), keyed
/// by quantized microseconds-since-start and carrying a task id instead of
/// a simulation event. Pop order is **exactly** the order a reference
/// `(key, seq)` heap would produce; a seeded property test in this module
/// pins that equivalence on this instantiation too.
///
/// # Examples
///
/// ```
/// use omega_runtime::coop::DeadlineQueue;
///
/// let mut q = DeadlineQueue::new();
/// q.push(50, 0); // task 0 due at key 50
/// q.push(20, 1); // task 1 due earlier
/// assert_eq!(q.pop(), Some((20, 1)));
/// assert_eq!(q.pop(), Some((50, 0)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct DeadlineQueue {
    wheel: TimerWheel<usize>,
}

impl DeadlineQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        DeadlineQueue {
            wheel: TimerWheel::new(),
        }
    }

    /// Schedules `task` to wake at `key`. Entries pushed earlier sort
    /// first among equal keys.
    pub fn push(&mut self, key: u64, task: usize) {
        self.wheel.push(key, task);
    }

    /// Removes and returns the earliest `(key, task)`.
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.wheel.pop().map(|(key, _seq, task)| (key, task))
    }

    /// The key of the earliest pending wakeup.
    #[must_use]
    pub fn peek_key(&self) -> Option<u64> {
        self.wheel.peek_key()
    }

    /// Number of pending wakeups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no wakeups are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

/// An application task multiplexed on the cooperative wheel *alongside*
/// the node loops — e.g. a replicated service's per-node work loop or a
/// client workload pump.
///
/// The contract mirrors the node tasks': each [`poll`](CoopTask::poll) does
/// one bounded chunk of work and returns the wall-clock deadline it wants
/// to run next at, or `None` to retire permanently. Polls are serialized
/// per task (the scheduler takes the task out of its slot while it runs),
/// so `&mut self` state needs no further synchronization; deadlines share
/// the exact `(deadline, arming order)` fairness of the node loops, which
/// is the point — client work competes with election work for the same
/// workers, as it would on a real box.
pub trait CoopTask: Send {
    /// Runs one chunk; returns the next deadline or `None` to retire.
    fn poll(&mut self) -> Option<Instant>;
}

/// One multiplexed task: a node loop, or an external application task.
enum Task {
    /// The `T2` heartbeat loop: poll, re-arm `step_interval` later.
    Step(Arc<NodeCore>),
    /// The `T3` timer loop: poll at the armed deadline, re-arm `timeout ×
    /// tick` later.
    Timer(Arc<NodeCore>),
    /// An application task with self-chosen deadlines.
    External(Box<dyn CoopTask>),
}

impl Task {
    /// Executes one poll; returns the next wall-clock deadline, or `None`
    /// when the task retires (node halted, or external task done).
    fn run(&mut self, config: &NodeConfig) -> Option<Instant> {
        match self {
            Task::Step(core) => core
                .poll_step()
                .then(|| Instant::now() + config.step_interval),
            Task::Timer(core) => core
                .poll_scan()
                .map(|timeout| Instant::now() + config.timer_span(timeout)),
            Task::External(task) => task.poll(),
        }
    }
}

/// Pacing and sizing of a cooperative runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoopConfig {
    /// Per-node pacing — the same knobs the dedicated-thread host takes,
    /// honored with the same meaning.
    pub node: NodeConfig,
    /// Worker threads multiplexing the task set. One worker (the default)
    /// makes the whole cluster single-threaded and maximally fair; a small
    /// pool adds parallelism without returning to two-threads-per-node.
    pub workers: usize,
}

impl Default for CoopConfig {
    fn default() -> Self {
        CoopConfig {
            node: NodeConfig::default(),
            workers: 1,
        }
    }
}

impl CoopConfig {
    /// A single-worker runtime at the given node pacing.
    #[must_use]
    pub fn with_node(node: NodeConfig) -> Self {
        CoopConfig { node, workers: 1 }
    }
}

struct SchedState {
    queue: DeadlineQueue,
    /// Task slab; `None` while a task executes on a worker or after it
    /// retired.
    tasks: Vec<Option<Task>>,
    /// Tasks not yet retired (executing tasks count as live).
    live: usize,
}

struct Inner {
    /// Origin of the deadline keys: key `k` means `start + k × SLOT_US µs`.
    start: Instant,
    config: NodeConfig,
    state: Mutex<SchedState>,
    cv: Condvar,
    stop: AtomicBool,
}

/// Quantizes a wall-clock deadline to a wheel key (slots of [`SLOT_US`]
/// past `start`), rounding up so a wakeup never fires before its deadline.
fn key_for(start: Instant, deadline: Instant) -> u64 {
    let micros = u64::try_from(
        deadline
            .saturating_duration_since(start)
            .as_micros()
            .min(u128::from(u64::MAX)),
    )
    .expect("clamped to u64::MAX");
    micros.div_ceil(SLOT_US)
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn key_of(&self, deadline: Instant) -> u64 {
        key_for(self.start, deadline)
    }

    /// The wall-clock instant a key stands for; `None` when it lies beyond
    /// what `Instant` arithmetic can represent (astronomic timeouts like
    /// the step-clock variant's `NEVER_TIMEOUT`).
    fn wake_time(&self, key: u64) -> Option<Instant> {
        let micros = key.checked_mul(SLOT_US)?;
        self.start.checked_add(Duration::from_micros(micros))
    }
}

fn worker_loop(inner: &Inner) {
    let mut state = inner.lock();
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        if state.live == 0 {
            // Every task retired (all nodes crashed or stopped): wake any
            // sibling still waiting so the pool drains.
            inner.cv.notify_all();
            return;
        }
        let Some(key) = state.queue.peek_key() else {
            // Live tasks are all mid-execution on other workers; their
            // re-arm (or retirement) will notify.
            state = inner.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        match inner.wake_time(key) {
            Some(due) => {
                let now = Instant::now();
                if let Some(wait) = due.checked_duration_since(now).filter(|w| !w.is_zero()) {
                    // Not due yet: sleep, but stay notifiable (shutdown,
                    // or a pool sibling re-arming an earlier deadline).
                    let (guard, _) = inner
                        .cv
                        .wait_timeout(state, wait)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = guard;
                    continue;
                }
            }
            None => {
                // The front deadline is unrepresentably far: park until
                // something changes. (Periodically re-check as a backstop.)
                let (guard, _) = inner
                    .cv
                    .wait_timeout(state, Duration::from_secs(3_600))
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
                continue;
            }
        }
        let (_key, id) = state.queue.pop().expect("peeked a key");
        let Some(mut task) = state.tasks[id].take() else {
            // Stale wakeup for a retired slot; nothing to run.
            continue;
        };
        // Poll outside the scheduler lock: the task body takes the node's
        // process lock and touches shared registers, and pool siblings
        // must keep dispatching meanwhile.
        drop(state);
        let rearm = task.run(&inner.config);
        state = inner.lock();
        match rearm {
            Some(deadline) => {
                let key = inner.key_of(deadline);
                state.tasks[id] = Some(task);
                state.queue.push(key, id);
                // A sibling may be sleeping toward a later deadline.
                inner.cv.notify_one();
            }
            None => {
                state.live -= 1;
                if state.live == 0 {
                    inner.cv.notify_all();
                }
            }
        }
    }
}

/// A small pool of worker threads cooperatively scheduling all node loops
/// of a cluster over a [`DeadlineQueue`].
///
/// Built by [`Cluster::start_coop`](crate::Cluster::start_coop); owns
/// nothing algorithm-visible — crash injection, leader queries, and
/// statistics all go through the same [`Node`](crate::Node)/cluster
/// surface as the dedicated-thread substrate.
pub struct CoopRuntime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl CoopRuntime {
    /// Starts the runtime hosting one step task and one timer task per
    /// core. The timer tasks arm exactly like the thread host: first
    /// deadline `initial_timeout × tick` from now; step tasks are due
    /// immediately.
    pub(crate) fn start(cores: &[Arc<NodeCore>], config: CoopConfig) -> Self {
        Self::start_with_tasks(cores, config, Vec::new())
    }

    /// [`start`](Self::start), plus `extras` — application tasks
    /// ([`CoopTask`]) multiplexed on the same wheel as the node loops,
    /// each due immediately for its first poll.
    pub(crate) fn start_with_tasks(
        cores: &[Arc<NodeCore>],
        config: CoopConfig,
        extras: Vec<Box<dyn CoopTask>>,
    ) -> Self {
        assert!(config.workers > 0, "a runtime needs at least one worker");
        let start = Instant::now();
        let mut state = SchedState {
            queue: DeadlineQueue::new(),
            tasks: Vec::with_capacity(cores.len() * 2 + extras.len()),
            live: 0,
        };
        for core in cores {
            let step_id = state.tasks.len();
            state.tasks.push(Some(Task::Step(Arc::clone(core))));
            state.queue.push(0, step_id);

            let timer_id = state.tasks.len();
            let first = Instant::now() + config.node.timer_span(core.initial_timeout());
            state.tasks.push(Some(Task::Timer(Arc::clone(core))));
            state.queue.push(key_for(start, first), timer_id);
        }
        for task in extras {
            let id = state.tasks.len();
            state.tasks.push(Some(Task::External(task)));
            state.queue.push(0, id);
        }
        state.live = state.tasks.len();

        let inner = Arc::new(Inner {
            start,
            config: config.node,
            state: Mutex::new(state),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("coop-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn coop worker")
            })
            .collect();
        CoopRuntime { inner, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops the workers and joins them. Node state is untouched — callers
    /// halt the nodes first, exactly as with dedicated threads.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        // Taking the lock orders the store before any worker's next check.
        drop(self.inner.lock());
        self.inner.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CoopRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for CoopRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("CoopRuntime")
            .field("workers", &self.workers.len())
            .field("live_tasks", &state.live)
            .field("queued", &state.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_sim::wheel::WHEEL_SLOTS;
    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_key_order_with_fifo_ties() {
        let mut q = DeadlineQueue::new();
        q.push(10, 0);
        q.push(1, 1);
        q.push(10, 2);
        q.push(5, 3);
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 1), (5, 3), (10, 0), (10, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_and_overdue_keys_route_through_the_heap() {
        let mut q = DeadlineQueue::new();
        let far = WHEEL_SLOTS as u64 * 7 + 3;
        q.push(far, 0);
        q.push(2, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_key(), Some(2));
        assert_eq!(q.pop(), Some((2, 1)));
        // Cursor advanced; pushing behind it is overdue and pops first.
        q.push(0, 2);
        assert_eq!(q.pop(), Some((0, 2)));
        assert_eq!(q.pop(), Some((far, 0)));
    }

    #[test]
    fn astronomically_far_keys_do_not_wedge_the_queue() {
        let mut q = DeadlineQueue::new();
        q.push(u64::MAX / SLOT_US, 0);
        q.push(7, 1);
        assert_eq!(q.pop(), Some((7, 1)));
        assert_eq!(q.peek_key(), Some(u64::MAX / SLOT_US));
    }

    /// The satellite property test: a seeded interleaving of pushes and
    /// pops must pop in exactly the order of a reference `(key, seq)`
    /// binary heap — near keys, far keys, overdue keys, and ties alike.
    #[test]
    fn seeded_wake_order_matches_reference_deadline_heap() {
        #[derive(PartialEq, Eq)]
        struct RefEntry {
            key: u64,
            seq: u64,
            task: usize,
        }
        impl Ord for RefEntry {
            fn cmp(&self, other: &Self) -> CmpOrdering {
                (other.key, other.seq).cmp(&(self.key, self.seq))
            }
        }
        impl PartialOrd for RefEntry {
            fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
                Some(self.cmp(other))
            }
        }

        for seed in 1u64..=20 {
            let mut rng = seed;
            let mut next = move || {
                // xorshift64*: deterministic, dependency-free.
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut queue = DeadlineQueue::new();
            let mut reference: BinaryHeap<RefEntry> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut last_popped = 0u64;
            for op in 0..2_000 {
                if next() % 3 != 0 || queue.is_empty() {
                    // Push: mostly near keys, sometimes far, sometimes
                    // overdue relative to what was already popped.
                    let key = match next() % 10 {
                        0 => last_popped.saturating_sub(next() % 50), // overdue
                        1..=2 => last_popped + next() % (WHEEL_SLOTS as u64 * 20), // far
                        _ => last_popped + next() % 500,              // near
                    };
                    let task = (op % 97) as usize;
                    queue.push(key, task);
                    reference.push(RefEntry { key, seq, task });
                    seq += 1;
                } else {
                    let got = queue.pop();
                    let want = reference.pop().map(|e| (e.key, e.task));
                    assert_eq!(got, want, "seed {seed}, op {op}");
                    if let Some((k, _)) = got {
                        last_popped = k;
                    }
                }
            }
            while let Some(want) = reference.pop() {
                assert_eq!(
                    queue.pop(),
                    Some((want.key, want.task)),
                    "seed {seed} drain"
                );
            }
            assert!(queue.is_empty());
        }
    }

    #[test]
    fn key_quantization_rounds_up_and_wake_time_inverts() {
        let inner = Inner {
            start: Instant::now(),
            config: NodeConfig::default(),
            state: Mutex::new(SchedState {
                queue: DeadlineQueue::new(),
                tasks: Vec::new(),
                live: 0,
            }),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        };
        let deadline = inner.start + Duration::from_micros(SLOT_US * 3 + 1);
        let key = inner.key_of(deadline);
        assert_eq!(key, 4, "keys round up so wakeups are never early");
        assert!(inner.wake_time(key).unwrap() >= deadline);
        // Unrepresentable futures collapse to None instead of panicking.
        assert_eq!(inner.wake_time(u64::MAX), None);
    }
}
