//! Criterion micro-benchmarks: the cost of the building blocks.
//!
//! These complement the figure/table binaries (which regenerate the paper's
//! shapes) with raw operation costs: register access, the `leader()` query
//! (task `T1`) as a function of `n`, one `T2`/`T3` step of each algorithm,
//! and a full single-leader consensus decision.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega_consensus::{ConsensusInstance, ConsensusProcess};
use omega_core::{
    Alg1Memory, Alg1Process, Alg2Memory, Alg2Process, elect_least_suspected, OmegaProcess,
};
use omega_registers::{MemorySpace, ProcessId, ProcessSet};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn bench_registers(c: &mut Criterion) {
    let space = MemorySpace::new(4);
    let nat = space.nat_register("R", p(0), 0);
    let flag = space.flag_register("F", p(0), false);
    let lock = space.swmr::<u64>("L", p(0), 0);

    let mut group = c.benchmark_group("registers");
    group.bench_function("nat_write", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            nat.write(p(0), v);
        });
    });
    group.bench_function("nat_read", |b| b.iter(|| nat.read(p(1))));
    group.bench_function("flag_write", |b| b.iter(|| flag.write(p(0), true)));
    group.bench_function("lock_cell_write", |b| b.iter(|| lock.write(p(0), 7)));
    group.bench_function("lock_cell_read", |b| b.iter(|| lock.read(p(2))));
    group.finish();
}

fn bench_leader_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_query");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        let proc0 = Alg1Process::new(Arc::clone(&mem), p(0));
        group.bench_with_input(BenchmarkId::new("alg1_t1", n), &n, |b, _| {
            b.iter(|| proc0.leader())
        });
    }
    group.finish();
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("steps");
    for n in [4usize, 16] {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        let mut proc0 = Alg1Process::new(Arc::clone(&mem), p(0));
        group.bench_with_input(BenchmarkId::new("alg1_t2_step", n), &n, |b, _| {
            b.iter(|| proc0.t2_step())
        });
        let mut proc1 = Alg1Process::new(Arc::clone(&mem), p(1));
        group.bench_with_input(BenchmarkId::new("alg1_t3_scan", n), &n, |b, _| {
            b.iter(|| proc1.on_timer_expire())
        });

        let space2 = MemorySpace::new(n);
        let mem2 = Alg2Memory::new(&space2);
        let mut q0 = Alg2Process::new(Arc::clone(&mem2), p(0));
        group.bench_with_input(BenchmarkId::new("alg2_t2_step", n), &n, |b, _| {
            b.iter(|| q0.t2_step())
        });
        let mut q1 = Alg2Process::new(Arc::clone(&mem2), p(1));
        group.bench_with_input(BenchmarkId::new("alg2_t3_scan", n), &n, |b, _| {
            b.iter(|| q1.on_timer_expire())
        });
    }
    group.finish();
}

fn bench_election_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexmin");
    for n in [8usize, 64, 256] {
        let candidates = ProcessSet::full(n);
        let counts: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % 1000).collect();
        group.bench_with_input(BenchmarkId::new("elect_least_suspected", n), &n, |b, _| {
            b.iter(|| elect_least_suspected(&candidates, |q| counts[q.index()]))
        });
    }
    group.finish();
}

fn bench_simulator_throughput(c: &mut Criterion) {
    use omega_core::OmegaVariant;
    use omega_sim::adversary::{AwbEnvelope, SeededRandom};
    use omega_sim::{SimTime, Simulation};

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    for n in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("alg1_full_run_10k_ticks", n), &n, |b, &n| {
            b.iter(|| {
                let sys = OmegaVariant::Alg1.build(n);
                Simulation::builder(sys.actors)
                    .adversary(AwbEnvelope::new(
                        SeededRandom::new(9, 1, 6),
                        p(0),
                        SimTime::from_ticks(500),
                        4,
                    ))
                    .horizon(10_000)
                    .sample_every(100)
                    .run()
                    .events_processed
            })
        });
    }
    group.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    for n in [3usize, 8] {
        group.bench_with_input(BenchmarkId::new("sole_leader_decide", n), &n, |b, &n| {
            b.iter(|| {
                let space = MemorySpace::new(n);
                let inst = ConsensusInstance::<u64>::new(&space, "C");
                let mut proposer = ConsensusProcess::new(inst, p(0), 42);
                proposer
                    .step_until_decided(p(0), 10 * n + 10)
                    .expect("sole leader decides")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_registers,
    bench_leader_query,
    bench_steps,
    bench_election_rule,
    bench_simulator_throughput,
    bench_consensus
);
criterion_main!(benches);
