//! Micro-benchmarks: the cost of the building blocks.
//!
//! These complement the figure/table binaries (which regenerate the paper's
//! shapes) with raw operation costs: register access, the `leader()` query
//! (task `T1`) as a function of `n`, one `T2`/`T3` step of each algorithm,
//! and a full single-leader consensus decision.
//!
//! Dependency-free harness (`harness = false`): each benchmark is run in
//! batches until ~50 ms of samples accumulate, then the per-iteration
//! median batch cost is reported in nanoseconds. Run with
//! `cargo bench -p omega-bench`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use omega_consensus::{ConsensusInstance, ConsensusProcess};
use omega_core::{
    elect_least_suspected, Alg1Memory, Alg1Process, Alg2Memory, Alg2Process, OmegaProcess,
};
use omega_registers::{MemorySpace, ProcessId, ProcessSet};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Runs `op` in growing batches until ~50 ms of samples exist; reports the
/// median per-iteration cost.
fn bench(group: &str, name: &str, mut op: impl FnMut()) {
    // Warm-up.
    for _ in 0..16 {
        op();
    }
    // Calibrate a batch that takes roughly 1 ms.
    let mut batch: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..batch {
            op();
        }
        if start.elapsed() >= Duration::from_millis(1) || batch >= 1 << 24 {
            break;
        }
        batch *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::new();
    let budget = Instant::now();
    while budget.elapsed() < Duration::from_millis(50) {
        let start = Instant::now();
        for _ in 0..batch {
            op();
        }
        per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{group}/{name:<28} {median:>12.1} ns/iter  ({} samples x {batch})",
        per_iter.len()
    );
}

fn bench_registers() {
    let space = MemorySpace::new(4);
    let nat = space.nat_register("R", p(0), 0);
    let flag = space.flag_register("F", p(0), false);
    let lock = space.swmr::<u64>("L", p(0), 0);

    let mut v = 0u64;
    bench("registers", "nat_write", || {
        v = v.wrapping_add(1);
        nat.write(p(0), v);
    });
    bench("registers", "nat_read", || {
        let _ = nat.read(p(1));
    });
    bench("registers", "flag_write", || flag.write(p(0), true));
    bench("registers", "lock_cell_write", || lock.write(p(0), 7));
    bench("registers", "lock_cell_read", || {
        let _ = lock.read(p(2));
    });
}

fn bench_leader_query() {
    for n in [2usize, 4, 8, 16, 32, 64] {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        let proc0 = Alg1Process::new(Arc::clone(&mem), p(0));
        bench("leader_query", &format!("alg1_t1/{n}"), || {
            let _ = proc0.leader();
        });
    }
}

fn bench_steps() {
    for n in [4usize, 16] {
        let space = MemorySpace::new(n);
        let mem = Alg1Memory::new(&space);
        let mut proc0 = Alg1Process::new(Arc::clone(&mem), p(0));
        bench("steps", &format!("alg1_t2_step/{n}"), || proc0.t2_step());
        let mut proc1 = Alg1Process::new(Arc::clone(&mem), p(1));
        bench("steps", &format!("alg1_t3_scan/{n}"), || {
            let _ = proc1.on_timer_expire();
        });

        let space2 = MemorySpace::new(n);
        let mem2 = Alg2Memory::new(&space2);
        let mut q0 = Alg2Process::new(Arc::clone(&mem2), p(0));
        bench("steps", &format!("alg2_t2_step/{n}"), || q0.t2_step());
        let mut q1 = Alg2Process::new(Arc::clone(&mem2), p(1));
        bench("steps", &format!("alg2_t3_scan/{n}"), || {
            let _ = q1.on_timer_expire();
        });
    }
}

fn bench_election_rule() {
    for n in [8usize, 64, 256] {
        let candidates = ProcessSet::full(n);
        let counts: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % 1000).collect();
        bench("lexmin", &format!("elect_least_suspected/{n}"), || {
            let _ = elect_least_suspected(&candidates, |q| counts[q.index()]);
        });
    }
}

fn bench_simulator_throughput() {
    use omega_scenario::{Driver, Scenario, SimDriver};

    for n in [4usize, 16] {
        let scenario = Scenario::fault_free(omega_core::OmegaVariant::Alg1, n)
            .horizon(10_000)
            .sample_every(100)
            .seed(9);
        bench("simulator", &format!("alg1_full_run_10k_ticks/{n}"), || {
            let _ = SimDriver.run(&scenario);
        });
    }
}

fn bench_consensus() {
    for n in [3usize, 8] {
        bench("consensus", &format!("sole_leader_decide/{n}"), || {
            let space = MemorySpace::new(n);
            let inst = ConsensusInstance::<u64>::new(&space, "C");
            let mut proposer = ConsensusProcess::new(inst, p(0), 42);
            proposer
                .step_until_decided(p(0), 10 * n + 10)
                .expect("sole leader decides");
        });
    }
}

fn main() {
    bench_registers();
    bench_leader_query();
    bench_steps();
    bench_election_rule();
    bench_simulator_throughput();
    bench_consensus();
}
