//! Minimal aligned-text table rendering for experiment output.

use std::fmt;

/// A left-aligned plain-text table.
///
/// # Examples
///
/// ```
/// use omega_bench::table::Table;
///
/// let mut t = Table::new(&["n", "leader", "stab time"]);
/// t.row(&["3", "p0", "1240"]);
/// t.row(&["8", "p2", "3805"]);
/// let out = t.to_string();
/// assert!(out.contains("leader"));
/// assert!(out.contains("p2"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        (0..cols)
            .map(|c| {
                std::iter::once(self.headers.get(c).map_or(0, String::len))
                    .chain(self.rows.iter().map(|r| r.get(c).map_or(0, String::len)))
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (c, w) in widths.iter().enumerate() {
                let cell = cells.get(c).map_or("", String::as_str);
                line.push_str(&format!("{cell:<w$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["a-much-longer-name", "22"]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // The value column starts at the same offset in every data row.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), offset);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["x", "extra"]);
        t.row::<&str>(&[]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let out = t.to_string();
        assert!(out.contains("extra"));
    }
}
