//! The standard election experiment: run a variant, summarize the paper's
//! observables.

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_sim::adversary::{AwbEnvelope, SeededRandom};
use omega_sim::crash::CrashPlan;
use omega_sim::{SimTime, Simulation};

/// AWB parameters for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct AwbParams {
    /// The AWB₁ timely process.
    pub timely: ProcessId,
    /// Time τ₁ after which its step delay is clamped.
    pub tau1: u64,
    /// The clamp σ.
    pub sigma: u64,
    /// Uniform step-delay range of the underlying random adversary.
    pub delay: (u64, u64),
    /// Adversary seed.
    pub seed: u64,
}

impl Default for AwbParams {
    fn default() -> Self {
        AwbParams {
            timely: ProcessId::new(0),
            tau1: 1_000,
            sigma: 4,
            delay: (1, 6),
            seed: 42,
        }
    }
}

impl AwbParams {
    /// Parameters suited to `variant` (the step-clock variant needs
    /// bounded step-rate variance; see EXPERIMENTS.md E11).
    #[must_use]
    pub fn for_variant(variant: OmegaVariant) -> Self {
        let mut params = AwbParams::default();
        if variant == OmegaVariant::StepClock {
            params.delay = (2, 6);
        }
        params
    }
}

/// Everything the figure/table binaries report about one election run.
#[derive(Debug, Clone)]
pub struct ElectionSummary {
    /// Variant name.
    pub variant: &'static str,
    /// System size.
    pub n: usize,
    /// Registers allocated by the variant's layout.
    pub register_count: usize,
    /// Whether the run reached a stable correct leader.
    pub stabilized: bool,
    /// The elected leader.
    pub leader: Option<ProcessId>,
    /// First sample tick of the stable suffix.
    pub stable_from: Option<u64>,
    /// Processes writing during the final quarter of the run.
    pub tail_writers: usize,
    /// Distinct registers written during the final quarter.
    pub tail_written_registers: usize,
    /// Shared-memory writes per 1000 ticks in the final quarter.
    pub tail_writes_per_1k: f64,
    /// Processes reading during the final quarter.
    pub tail_readers: usize,
    /// Total shared-memory high-water footprint (bits) at the end.
    pub hwm_bits: u64,
    /// Registers whose footprint still grew in the final quarter.
    pub grown_in_tail: Vec<String>,
}

/// Runs one election experiment and summarizes it.
///
/// `crash_leader_at` optionally crashes the plurality leader at the given
/// tick (failover experiments).
#[must_use]
pub fn run_election(
    variant: OmegaVariant,
    n: usize,
    horizon: u64,
    params: AwbParams,
    crash_leader_at: Option<u64>,
) -> ElectionSummary {
    let sys = variant.build(n);
    let register_count = sys.space.register_count();
    let space = sys.space.clone();
    let mut plan = CrashPlan::none();
    if let Some(t) = crash_leader_at {
        plan = plan.with_leader_crash_at(SimTime::from_ticks(t));
    }
    let report = Simulation::builder(sys.actors)
        .adversary(AwbEnvelope::new(
            SeededRandom::new(params.seed, params.delay.0, params.delay.1),
            params.timely,
            SimTime::from_ticks(params.tau1),
            params.sigma,
        ))
        .crash_plan(plan)
        .memory(space)
        .horizon(horizon)
        .sample_every((horizon / 400).max(1))
        .stats_checkpoints(16)
        .run();

    let stabilization = report.stabilization();
    let tail = report.windowed.tail(0.25);
    let (tail_writers, tail_written, tail_rate, tail_readers) = tail
        .map(|w| {
            let span = (w.end - w.start).max(1);
            (
                w.stats.writer_set().len(),
                w.stats.written_registers().len(),
                w.stats.total_writes() as f64 * 1000.0 / span as f64,
                w.stats.reader_set().len(),
            )
        })
        .unwrap_or((0, 0, 0.0, 0));
    let grown_in_tail = match report.footprints.len() {
        0 | 1 => Vec::new(),
        len => {
            let mid = &report.footprints[len * 3 / 4].1;
            let last = &report.footprints[len - 1].1;
            last.grown_since(mid)
                .into_iter()
                .map(String::from)
                .collect()
        }
    };
    ElectionSummary {
        variant: variant.name(),
        n,
        register_count,
        stabilized: report.stabilized_for(0.2),
        leader: stabilization.map(|s| s.leader),
        stable_from: stabilization.map(|s| s.stable_from.ticks()),
        tail_writers,
        tail_written_registers: tail_written,
        tail_writes_per_1k: tail_rate,
        tail_readers,
        hwm_bits: report
            .footprints
            .last()
            .map(|(_, fp)| fp.total_hwm_bits())
            .unwrap_or(0),
        grown_in_tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_captures_the_alg1_shape() {
        let s = run_election(
            OmegaVariant::Alg1,
            4,
            30_000,
            AwbParams::default(),
            None,
        );
        assert!(s.stabilized);
        assert_eq!(s.tail_writers, 1, "Theorem 3: single writer after stabilization");
        assert_eq!(s.tail_written_registers, 1);
        assert_eq!(s.tail_readers, 4, "Lemma 6: everyone keeps reading");
        assert!(s.grown_in_tail.len() <= 1, "Theorem 2: one unbounded register");
        assert_eq!(s.register_count, 4 + 4 + 16);
    }

    #[test]
    fn summary_captures_the_alg2_shape() {
        let s = run_election(
            OmegaVariant::Alg2,
            4,
            30_000,
            AwbParams::default(),
            None,
        );
        assert!(s.stabilized);
        assert_eq!(s.tail_writers, 4, "Corollary 1: everyone writes forever");
        assert!(s.grown_in_tail.is_empty(), "Theorem 6: fully bounded");
    }

    #[test]
    fn failover_summary() {
        let s = run_election(
            OmegaVariant::Alg1,
            4,
            60_000,
            AwbParams {
                timely: ProcessId::new(1),
                ..AwbParams::default()
            },
            Some(20_000),
        );
        assert!(s.stabilized, "re-election after the crash");
        assert!(s.stable_from.unwrap() >= 20_000);
    }

    #[test]
    fn variant_params_bound_stepclock_variance() {
        assert_eq!(AwbParams::for_variant(OmegaVariant::StepClock).delay.0, 2);
        assert_eq!(AwbParams::for_variant(OmegaVariant::Alg1).delay.0, 1);
    }
}
