//! The standard election experiment: run a scenario, summarize the paper's
//! observables.

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_scenario::{AdversarySpec, Driver, Outcome, Scenario, SimDriver};

/// AWB parameters for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct AwbParams {
    /// The AWB₁ timely process.
    pub timely: ProcessId,
    /// Time τ₁ after which its step delay is clamped.
    pub tau1: u64,
    /// The clamp σ.
    pub sigma: u64,
    /// Uniform step-delay range of the underlying random adversary.
    pub delay: (u64, u64),
    /// Adversary seed.
    pub seed: u64,
}

impl Default for AwbParams {
    fn default() -> Self {
        AwbParams {
            timely: ProcessId::new(0),
            tau1: 1_000,
            sigma: 4,
            delay: (1, 6),
            seed: 42,
        }
    }
}

impl AwbParams {
    /// Parameters suited to `variant` (the step-clock variant needs
    /// bounded step-rate variance; see EXPERIMENTS.md E11).
    #[must_use]
    pub fn for_variant(variant: OmegaVariant) -> Self {
        let mut params = AwbParams::default();
        if variant == OmegaVariant::StepClock {
            params.delay = (2, 6);
        }
        params
    }

    /// The scenario these parameters describe.
    #[must_use]
    pub fn scenario(&self, variant: OmegaVariant, n: usize, horizon: u64) -> Scenario {
        Scenario::fault_free(variant, n)
            .adversary(AdversarySpec::Random {
                min: self.delay.0,
                max: self.delay.1,
            })
            .awb(self.timely, self.tau1, self.sigma)
            .seed(self.seed)
            .horizon(horizon)
            .sample_every((horizon / 400).max(1))
            .stats_checkpoints(16)
    }
}

/// Everything the figure/table binaries report about one election run.
#[derive(Debug, Clone)]
pub struct ElectionSummary {
    /// Variant name.
    pub variant: &'static str,
    /// System size.
    pub n: usize,
    /// Registers allocated by the variant's layout.
    pub register_count: usize,
    /// Whether the run reached a stable correct leader.
    pub stabilized: bool,
    /// The elected leader.
    pub leader: Option<ProcessId>,
    /// First sample tick of the stable suffix.
    pub stable_from: Option<u64>,
    /// Processes writing during the final quarter of the run.
    pub tail_writers: usize,
    /// Distinct registers written during the final quarter.
    pub tail_written_registers: usize,
    /// Shared-memory writes per 1000 ticks in the final quarter.
    pub tail_writes_per_1k: f64,
    /// Processes reading during the final quarter.
    pub tail_readers: usize,
    /// Total shared-memory high-water footprint (bits) at the end.
    pub hwm_bits: u64,
    /// Registers whose footprint still grew in the final quarter.
    pub grown_in_tail: Vec<String>,
}

impl ElectionSummary {
    /// Condenses a backend [`Outcome`] into the table row the binaries
    /// print.
    #[must_use]
    pub fn from_outcome(outcome: &Outcome) -> Self {
        let (tail_writers, tail_written, tail_rate, tail_readers) = outcome
            .tail
            .as_ref()
            .map(|t| {
                (
                    t.writers.len(),
                    t.written_registers,
                    t.writes_per_1k,
                    t.readers.len(),
                )
            })
            .unwrap_or((0, 0, 0.0, 0));
        ElectionSummary {
            variant: outcome.variant.name(),
            n: outcome.n,
            register_count: outcome.register_count,
            stabilized: outcome.stabilized_for(0.2),
            leader: outcome.elected,
            stable_from: outcome.stabilization_ticks,
            tail_writers,
            tail_written_registers: tail_written,
            tail_writes_per_1k: tail_rate,
            tail_readers,
            hwm_bits: outcome.hwm_bits,
            grown_in_tail: outcome.grown_in_tail.clone(),
        }
    }
}

/// Runs one scenario on the simulator and summarizes it.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ElectionSummary {
    ElectionSummary::from_outcome(&SimDriver.run(scenario))
}

/// Runs one election experiment and summarizes it.
///
/// `crash_leader_at` optionally crashes the plurality leader at the given
/// tick (failover experiments).
#[must_use]
pub fn run_election(
    variant: OmegaVariant,
    n: usize,
    horizon: u64,
    params: AwbParams,
    crash_leader_at: Option<u64>,
) -> ElectionSummary {
    let mut scenario = params.scenario(variant, n, horizon);
    if let Some(t) = crash_leader_at {
        scenario = scenario.crash_leader_at(t);
    }
    run_scenario(&scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_captures_the_alg1_shape() {
        let s = run_election(OmegaVariant::Alg1, 4, 30_000, AwbParams::default(), None);
        assert!(s.stabilized);
        assert_eq!(
            s.tail_writers, 1,
            "Theorem 3: single writer after stabilization"
        );
        assert_eq!(s.tail_written_registers, 1);
        assert_eq!(s.tail_readers, 4, "Lemma 6: everyone keeps reading");
        assert!(
            s.grown_in_tail.len() <= 1,
            "Theorem 2: one unbounded register"
        );
        assert_eq!(s.register_count, 4 + 4 + 16);
    }

    #[test]
    fn summary_captures_the_alg2_shape() {
        let s = run_election(OmegaVariant::Alg2, 4, 30_000, AwbParams::default(), None);
        assert!(s.stabilized);
        assert_eq!(s.tail_writers, 4, "Corollary 1: everyone writes forever");
        assert!(s.grown_in_tail.is_empty(), "Theorem 6: fully bounded");
    }

    #[test]
    fn failover_summary() {
        let s = run_election(
            OmegaVariant::Alg1,
            4,
            60_000,
            AwbParams {
                timely: ProcessId::new(1),
                ..AwbParams::default()
            },
            Some(20_000),
        );
        assert!(s.stabilized, "re-election after the crash");
        assert!(s.stable_from.unwrap() >= 20_000);
    }

    #[test]
    fn variant_params_bound_stepclock_variance() {
        assert_eq!(AwbParams::for_variant(OmegaVariant::StepClock).delay.0, 2);
        assert_eq!(AwbParams::for_variant(OmegaVariant::Alg1).delay.0, 1);
    }

    #[test]
    fn registry_scenarios_summarize() {
        let s = run_scenario(&omega_scenario::registry::fault_free());
        assert!(s.stabilized);
        assert_eq!(s.n, 4);
    }
}
