//! Shared infrastructure for the experiment harness.
//!
//! Every figure and theorem of the paper has a binary in `src/bin/` that
//! regenerates its observable shape (see `EXPERIMENTS.md` at the workspace
//! root for the index). This library holds what those binaries share: plain
//! text table rendering and the standard election-run summary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod table;

mod summary;

pub use summary::{run_election, run_scenario, AwbParams, ElectionSummary};
