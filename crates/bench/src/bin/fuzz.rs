//! Randomized scenario fuzzer over the election invariants, with trace
//! capture and greedy shrinking to minimal reproducers.
//!
//! Modes and flags:
//!
//! * **Campaign** (default) — generates `--budget` random [`Scenario`]
//!   specs from `--seed` (random `n`, crash scripts, adversaries, timer
//!   models, σ/jitter), runs each on the deterministic simulator, and
//!   checks two oracles: *safety* (never two simultaneously stable,
//!   active leaders) and *liveness* (specs the
//!   [`fuzz::liveness_checkable`] envelope vouches for must stabilize).
//!   On a violation the spec is shrunk ([`fuzz::shrink`]) to a fixpoint
//!   — halve `n`, drop crashes, reset fields to defaults, greedily
//!   re-testing — and the minimal reproducer is written into `--out`
//!   (default `fuzz-regression/`) as `<hash>.spec` (the spec text, a
//!   registry-loadable scenario named `fuzz-regression/<hash>`) plus
//!   `<hash>.trace` (its full binary event trace). The run exits
//!   non-zero when any violation was found. `--max-secs` bounds the
//!   wall clock (for nightly CI: a fixed per-night seed and a time
//!   budget instead of an iteration count).
//! * **`--replay <file.trace>`** — decodes a trace file, parses the
//!   embedded spec text, replays the recorded event sequence, and
//!   proves it byte-identical to a fresh live run of the same spec
//!   (equal [`omega_scenario::Outcome::fingerprint`]s and equal
//!   re-encoded trace
//!   bytes). Exits non-zero on any divergence.
//! * **`--minimize <file.spec>`** — re-runs a spec-text file's scenario;
//!   if it still violates an oracle, shrinks it and writes the minimal
//!   reproducer (exit 1, a violation exists); if it no longer
//!   reproduces, says so (exit 0).
//! * **`--record <scenario-name>`** — runs one registry scenario with
//!   trace capture and writes `<out>/<name>.trace` (a self-contained
//!   replay file); for seeding the corpus with known-good traces.
//! * **`--corpus <dir>`** — re-checks every stored `*.spec` reproducer
//!   in a directory against the current code: an entry that *still*
//!   violates is an unfixed regression (exit 1); a corpus of fixed bugs
//!   must come back clean.

use std::path::{Path, PathBuf};
use std::time::Instant;

use omega_scenario::{fuzz, registry, spec_text, Scenario, SimDriver};
use omega_sim::rng::SmallRng;
use omega_sim::Trace;

/// Parsed command line. One of the `Option` modes, or the default
/// campaign driven by `budget`/`seed`/`max_secs`.
#[derive(Debug, Clone, PartialEq)]
struct Config {
    budget: u64,
    hostile_budget: u64,
    seed: u64,
    max_secs: Option<u64>,
    out: PathBuf,
    replay: Option<PathBuf>,
    minimize: Option<PathBuf>,
    record: Option<String>,
    corpus: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            budget: 1000,
            hostile_budget: 0,
            seed: 42,
            max_secs: None,
            out: PathBuf::from("fuzz-regression"),
            replay: None,
            minimize: None,
            record: None,
            corpus: None,
        }
    }
}

impl Config {
    /// Parses the argument list (without the program name). Errors name
    /// the offending flag so `usage()` can echo them.
    fn parse(args: impl Iterator<Item = String>) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut args = args.peekable();
        let next_value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--budget" => {
                    cfg.budget = next_value("--budget", &mut args)?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?;
                }
                "--hostile-budget" => {
                    cfg.hostile_budget = next_value("--hostile-budget", &mut args)?
                        .parse()
                        .map_err(|e| format!("--hostile-budget: {e}"))?;
                }
                "--seed" => {
                    cfg.seed = next_value("--seed", &mut args)?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--max-secs" => {
                    cfg.max_secs = Some(
                        next_value("--max-secs", &mut args)?
                            .parse()
                            .map_err(|e| format!("--max-secs: {e}"))?,
                    );
                }
                "--out" => cfg.out = PathBuf::from(next_value("--out", &mut args)?),
                "--replay" => cfg.replay = Some(PathBuf::from(next_value("--replay", &mut args)?)),
                "--minimize" => {
                    cfg.minimize = Some(PathBuf::from(next_value("--minimize", &mut args)?));
                }
                "--record" => cfg.record = Some(next_value("--record", &mut args)?),
                "--corpus" => cfg.corpus = Some(PathBuf::from(next_value("--corpus", &mut args)?)),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cfg)
    }
}

fn usage(error: &str) -> ! {
    eprintln!("error: {error}");
    eprintln!(
        "usage: fuzz [--budget N] [--hostile-budget N] [--seed S] [--max-secs T] [--out DIR]\n\
         \x20      | --replay FILE.trace | --minimize FILE.spec\n\
         \x20      | --record SCENARIO-NAME [--out DIR] | --corpus DIR"
    );
    std::process::exit(2);
}

/// The `<hash>` part of a reproducer's registry name — its file stem.
fn file_stem(reproducer_name: &str) -> &str {
    reproducer_name
        .rsplit('/')
        .next()
        .unwrap_or(reproducer_name)
}

/// Writes the minimal reproducer's `<hash>.spec` and `<hash>.trace` into
/// `out`, returning the two paths.
fn write_reproducer(out: &Path, minimal: &Scenario) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(out)?;
    let name = fuzz::reproducer_name(minimal);
    let named = minimal.clone().named(&name);
    let stem = file_stem(&name).to_string();
    let spec_path = out.join(format!("{stem}.spec"));
    std::fs::write(&spec_path, spec_text::to_spec_text(&named))?;
    let (_, trace) = SimDriver.run_traced(&named);
    let trace_path = out.join(format!("{stem}.trace"));
    std::fs::write(&trace_path, trace.encode())?;
    Ok((spec_path, trace_path))
}

/// Shrinks a violating spec against the real oracle and reports the
/// before/after sizes plus where the reproducer landed.
fn shrink_and_emit(out: &Path, spec: &Scenario, violation: &fuzz::Violation) -> String {
    let minimal = fuzz::shrink(spec, &mut fuzz::run_and_check);
    let final_violation =
        fuzz::run_and_check(&minimal).expect("shrink only returns specs that still violate");
    let name = fuzz::reproducer_name(&minimal);
    match write_reproducer(out, &minimal) {
        Ok((spec_path, trace_path)) => format!(
            "{violation}\n  shrunk {} -> {} spec lines (n {} -> {}), still {}\n  reproducer: {} + {}",
            fuzz::spec_lines(spec),
            fuzz::spec_lines(&minimal),
            spec.n,
            minimal.n,
            final_violation.kind(),
            spec_path.display(),
            trace_path.display(),
        ),
        Err(e) => format!("{violation}\n  shrunk to {name} but writing it failed: {e}"),
    }
}

/// The default mode: `budget` random specs plus `hostile_budget` draws
/// taken straight from the hostile pool (or until the wall budget runs
/// out), every violation shrunk and written. Returns the failure count.
fn campaign(cfg: &Config) -> usize {
    let started = Instant::now();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut ran = 0u64;
    let mut checkable = 0u64;
    let mut hostile_certified = 0u64;
    let mut reports: Vec<String> = Vec::new();
    let mut seen_reproducers: Vec<String> = Vec::new();
    // The dedicated hostile slice runs first: it is small and must not
    // be starved when --max-secs (not --budget) is the effective limit,
    // as in the nightly. One RNG stream across both pools, so
    // (seed, budget, hostile-budget) fully determines every spec drawn.
    type Pool = (&'static str, u64, fn(&mut SmallRng) -> Scenario);
    let pools: [Pool; 2] = [
        ("hostile", cfg.hostile_budget, fuzz::generate_hostile),
        ("mixed", cfg.budget, fuzz::generate),
    ];
    'pools: for (pool, budget, draw) in pools {
        for i in 0..budget {
            if let Some(max) = cfg.max_secs {
                if started.elapsed().as_secs() >= max {
                    println!("wall budget of {max}s exhausted after {i} of {budget} {pool} specs");
                    break 'pools;
                }
            }
            let spec = draw(&mut rng);
            ran += 1;
            if fuzz::liveness_checkable(&spec) {
                checkable += 1;
            }
            if fuzz::provably_hostile(&spec).is_some() {
                hostile_certified += 1;
            }
            if let Some(violation) = fuzz::run_and_check(&spec) {
                let report = shrink_and_emit(&cfg.out, &spec, &violation);
                // One minimal reproducer per distinct hash: the same root
                // cause found twice must not spam the registry directory.
                let minimal_name = report.lines().last().unwrap_or_default().to_string();
                if !seen_reproducers.contains(&minimal_name) {
                    seen_reproducers.push(minimal_name);
                    reports.push(report);
                }
            }
            if (i + 1) % 250 == 0 {
                println!(
                    "  … {} of {budget} {pool} specs in {:.1}s ({} liveness-checkable, {} non-election-certified, {} violation(s))",
                    i + 1,
                    started.elapsed().as_secs_f64(),
                    checkable,
                    hostile_certified,
                    reports.len()
                );
            }
        }
    }
    println!(
        "fuzz campaign: {ran} specs from seed {} in {:.1}s — {checkable} liveness-checkable, {hostile_certified} non-election-certified, {} violation(s)",
        cfg.seed,
        started.elapsed().as_secs_f64(),
        reports.len()
    );
    for report in &reports {
        eprintln!("VIOLATION: {report}");
    }
    reports.len()
}

/// `--replay`: proves a trace file reproduces its recorded run
/// byte-identically. Returns an error string on any divergence.
fn replay(path: &Path) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let trace = Trace::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let scenario = spec_text::from_spec_text(&trace.meta)
        .map_err(|e| format!("{}: embedded spec text: {e}", path.display()))?;
    let replayed = SimDriver.run_replay(&scenario, &trace);
    let (live, mut live_trace) = SimDriver.run_traced(&scenario);
    if replayed.fingerprint() != live.fingerprint() {
        return Err(format!(
            "replay diverged from a live run of `{}`:\n  replayed: {}\n  live    : {}",
            scenario.name,
            replayed.fingerprint(),
            live.fingerprint()
        ));
    }
    // Byte identity of the event stream itself: re-recording the run must
    // reproduce the file's encoding exactly (under the file's own meta —
    // a hand-annotated spec text would differ harmlessly).
    live_trace.meta = trace.meta.clone();
    if live_trace.encode() != trace.encode() {
        return Err(format!(
            "re-recorded event stream differs from {} ({} vs {} events)",
            path.display(),
            live_trace.len(),
            trace.len()
        ));
    }
    Ok(format!(
        "replay of {} ({} events, n={}) is byte-identical to a live run\n{}",
        path.display(),
        trace.len(),
        trace.n,
        live.summary()
    ))
}

/// `--minimize`: shrink a stored spec if it still violates. `Ok(msg)`
/// means no violation remains; `Err(report)` carries the reproducer.
fn minimize(out: &Path, path: &Path) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let spec = spec_text::from_spec_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match fuzz::run_and_check(&spec) {
        None => Ok(format!(
            "{}: `{}` no longer violates any oracle (fixed, or machine-dependent)",
            path.display(),
            spec.name
        )),
        Some(violation) => Err(shrink_and_emit(out, &spec, &violation)),
    }
}

/// `--record`: capture one registry scenario's trace into `out`.
fn record(out: &Path, name: &str) -> Result<String, String> {
    let scenario =
        registry::named(name).ok_or_else(|| format!("no registry scenario named `{name}`"))?;
    let (outcome, trace) = SimDriver.run_traced(&scenario);
    std::fs::create_dir_all(out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let path = out.join(format!("{}.trace", name.replace('/', "_")));
    std::fs::write(&path, trace.encode()).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(format!(
        "recorded {} events of `{name}` into {}\n{}",
        trace.len(),
        path.display(),
        outcome.summary()
    ))
}

/// `--corpus`: re-check every stored reproducer. Returns the list of
/// entries that still violate (a fixed-bug corpus must return empty).
fn check_corpus(dir: &Path) -> Result<Vec<String>, String> {
    let entries = registry::load_dir(dir)?;
    if entries.is_empty() {
        return Err(format!(
            "corpus {} holds no *.spec reproducers",
            dir.display()
        ));
    }
    let mut still_violating = Vec::new();
    for spec in &entries {
        match fuzz::run_and_check(spec) {
            None => println!("  {}: clean", spec.name),
            Some(v) => {
                println!("  {}: STILL VIOLATING ({})", spec.name, v.kind());
                still_violating.push(format!("{}: {v}", spec.name));
            }
        }
    }
    println!(
        "corpus {}: {} reproducer(s), {} still violating",
        dir.display(),
        entries.len(),
        still_violating.len()
    );
    Ok(still_violating)
}

fn main() {
    let cfg = match Config::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => usage(&e),
    };
    let modes = [
        cfg.replay.is_some(),
        cfg.minimize.is_some(),
        cfg.record.is_some(),
        cfg.corpus.is_some(),
    ];
    if modes.iter().filter(|&&m| m).count() > 1 {
        usage("--replay/--minimize/--record/--corpus are mutually exclusive");
    }
    if let Some(path) = &cfg.replay {
        match replay(path) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("replay FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(path) = &cfg.minimize {
        match minimize(&cfg.out, path) {
            Ok(msg) => println!("{msg}"),
            Err(report) => {
                eprintln!("VIOLATION: {report}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(name) = &cfg.record {
        match record(&cfg.out, name) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("record FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(dir) = &cfg.corpus {
        match check_corpus(dir) {
            Ok(still) if still.is_empty() => return,
            Ok(still) => {
                for entry in &still {
                    eprintln!("corpus regression: {entry}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("corpus FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    if campaign(&cfg) > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Config, String> {
        Config::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_flags_parse() {
        let cfg = parse(&[]).unwrap();
        assert_eq!(cfg, Config::default());
        let cfg = parse(&[
            "--budget",
            "50",
            "--hostile-budget",
            "12",
            "--seed",
            "7",
            "--max-secs",
            "300",
            "--out",
            "x",
        ])
        .unwrap();
        assert_eq!(cfg.budget, 50);
        assert_eq!(cfg.hostile_budget, 12);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.max_secs, Some(300));
        assert_eq!(cfg.out, PathBuf::from("x"));
        assert!(parse(&["--hostile-budget", "some"])
            .unwrap_err()
            .contains("--hostile-budget"));
    }

    #[test]
    fn mode_flags_parse_and_bad_flags_error() {
        let cfg = parse(&["--replay", "a.trace"]).unwrap();
        assert_eq!(cfg.replay, Some(PathBuf::from("a.trace")));
        let cfg = parse(&["--corpus", "dir", "--record", "fault-free"]).unwrap();
        assert!(cfg.corpus.is_some() && cfg.record.is_some());
        assert!(parse(&["--budget"]).unwrap_err().contains("--budget"));
        assert!(parse(&["--budget", "many"]).is_err());
        assert!(parse(&["--frobnicate"]).unwrap_err().contains("unknown"));
    }

    #[test]
    fn reproducer_file_stem_strips_the_registry_prefix() {
        assert_eq!(file_stem("fuzz-regression/abc123def456"), "abc123def456");
        assert_eq!(file_stem("bare"), "bare");
    }

    #[test]
    fn record_replay_round_trip_through_a_real_file() {
        let dir = std::env::temp_dir().join(format!("omega-fuzz-test-{}", std::process::id()));
        let msg = record(&dir, "fault-free").unwrap();
        assert!(msg.contains("recorded"));
        let trace_path = dir.join("fault-free.trace");
        let msg = replay(&trace_path).unwrap();
        assert!(msg.contains("byte-identical"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_campaign_finds_no_violations() {
        let dir = std::env::temp_dir().join(format!("omega-fuzz-camp-{}", std::process::id()));
        let cfg = Config {
            budget: 15,
            seed: 2026,
            out: dir.clone(),
            ..Config::default()
        };
        assert_eq!(campaign(&cfg), 0, "seed 2026 must fuzz clean");
        assert!(!dir.exists(), "no violations -> no reproducer directory");
    }

    #[test]
    fn hostile_slice_runs_the_non_election_oracle_clean() {
        let dir = std::env::temp_dir().join(format!("omega-fuzz-hostile-{}", std::process::id()));
        let cfg = Config {
            budget: 0,
            hostile_budget: 4,
            seed: 7,
            out: dir.clone(),
            ..Config::default()
        };
        assert_eq!(campaign(&cfg), 0, "the hostile pool must fuzz clean");
        assert!(!dir.exists(), "no violations -> no reproducer directory");
    }
}
