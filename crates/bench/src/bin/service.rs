//! Service-suite benchmark: the leader-gated replicated KV under open-loop
//! client load, reporting failover unavailability as the headline SLO.
//!
//! Modes and flags mirror the `scenarios` bin:
//!
//! * **Record** (default) — runs every registry service scenario on the
//!   chosen backend, prints the outcome table, and writes
//!   `BENCH_service.json` (sim) or `BENCH_service.<driver>.json`
//!   (wall-clock), honoring `$BENCH_OUT`.
//! * **Check** (`--check <baseline.json>`) — diffs against the committed
//!   baseline. On the simulator every gated field is deterministic, so
//!   the gate fails on: a committed-count drop beyond 5 % + 5 requests, a
//!   failed-request (rejected + stalled) growth beyond 25 % + 5, an
//!   unavailability growth beyond 25 % + 500 ticks, or a total-write
//!   growth beyond 15 %. Wall-clock backends gate on timing only
//!   (advisory unless `--strict-timing`), exactly like the scenarios bin.
//! * **`--driver sim|coop|threads`** — picks the backend (default `sim`).
//!   The cooperative backend multiplexes the service loops and the
//!   workload pump on the same deadline wheel as the election's task
//!   loops; `threads` gives every replica loop its own OS thread.
//! * **`--only <substring>`** — restricts the run; a filtered run never
//!   overwrites the committed full-suite baseline.
//! * **`--list`** — prints the service registry and exits.

use std::fmt::Write as _;

use omega_bench::table::Table;
use omega_service::{
    registry, ServiceCoopDriver, ServiceOutcome, ServiceSimDriver, ServiceThreadDriver,
};

/// Committed requests may drop by at most this fraction (plus
/// [`COUNT_SLACK`]) before the gate fails.
const MAX_COMMIT_DROP: f64 = 0.05;
/// Failed requests (rejected + stalled) may grow by at most this fraction
/// (plus [`COUNT_SLACK`]) before the gate fails.
const MAX_FAILED_GROWTH: f64 = 0.25;
/// Absolute slack on the request-count gates: tiny baselines should not
/// flake on ±a-handful-of-requests drift when scenarios are retuned.
const COUNT_SLACK: u64 = 5;
/// Total unavailability may grow by at most this fraction plus
/// [`UNAVAIL_SLACK_TICKS`] before the gate fails.
const MAX_UNAVAIL_GROWTH: f64 = 0.25;
/// Absolute slack on the unavailability gate, in ticks.
const UNAVAIL_SLACK_TICKS: u64 = 500;
/// Allowed relative growth of `total_writes` before the gate fails.
const MAX_WRITE_REGRESSION: f64 = 0.15;
/// Wall-clock delta beyond which a timing warning is collected (failures
/// only under `--strict-timing`).
const TIMING_REPORT_THRESHOLD: f64 = 0.50;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Sim,
    Coop,
    Threads,
}

impl Backend {
    fn parse(name: &str) -> Option<Backend> {
        match name {
            "sim" => Some(Backend::Sim),
            "coop" => Some(Backend::Coop),
            "threads" => Some(Backend::Threads),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Coop => "coop",
            Backend::Threads => "threads",
        }
    }

    fn run(self, scenario: &omega_service::ServiceScenario, workers: usize) -> ServiceOutcome {
        match self {
            Backend::Sim => ServiceSimDriver.run(scenario),
            Backend::Coop => ServiceCoopDriver {
                workers,
                ..ServiceCoopDriver::default()
            }
            .run(scenario),
            Backend::Threads => ServiceThreadDriver::default().run(scenario),
        }
    }

    /// Only the simulator's records are deterministic enough to gate on
    /// request counts and unavailability ticks.
    fn gates_model_counters(self) -> bool {
        self == Backend::Sim
    }

    /// Whether the backend admits the scenario — a read of the election
    /// spec's driver-eligibility table.
    fn admits(self, scenario: &omega_service::ServiceScenario) -> bool {
        let eligible = scenario.election.eligible_drivers();
        match self {
            Backend::Sim => eligible.sim,
            Backend::Coop => eligible.coop,
            Backend::Threads => eligible.threads,
        }
    }
}

/// The baseline fields the service gate compares. Unknown JSON fields are
/// ignored; optional fields parse to `None` (same growth rules as the
/// scenarios bin's parser).
#[derive(Debug, Clone, PartialEq)]
struct BaselineRecord {
    scenario: String,
    backend: Option<String>,
    requests: u64,
    committed: u64,
    rejected: u64,
    stalled: u64,
    unavail_ticks: u64,
    total_writes: u64,
    /// Requests that outlived the workload's fail-fast stall bound;
    /// `None` for baselines predating the drain SLO. The gate holds the
    /// *current* run at zero regardless — a breach is never a trend.
    stall_bound_breaches: Option<u64>,
    wall_ms: Option<f64>,
}

fn raw_field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = &object[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn string_field(object: &str, key: &str) -> Option<String> {
    let raw = raw_field(object, key)?;
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(raw.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Parses the artifact this bin writes: one flat record per line. A line
/// that looks like a record but does not parse is a hard error — silently
/// dropping it would exempt its scenario from the gate.
fn parse_baseline(json: &str) -> Result<Vec<BaselineRecord>, String> {
    json.lines()
        .map(str::trim)
        .filter(|line| line.starts_with('{'))
        .map(|line| {
            let parsed = (|| {
                Some(BaselineRecord {
                    scenario: string_field(line, "scenario")?,
                    backend: string_field(line, "backend"),
                    requests: raw_field(line, "requests")?.parse().ok()?,
                    committed: raw_field(line, "committed")?.parse().ok()?,
                    rejected: raw_field(line, "rejected")?.parse().ok()?,
                    stalled: raw_field(line, "stalled")?.parse().ok()?,
                    unavail_ticks: raw_field(line, "unavail_ticks")?.parse().ok()?,
                    total_writes: raw_field(line, "total_writes")?.parse().ok()?,
                    stall_bound_breaches: raw_field(line, "stall_bound_breaches")
                        .and_then(|raw| raw.parse().ok()),
                    wall_ms: raw_field(line, "wall_ms").and_then(|raw| raw.parse().ok()),
                })
            })();
            parsed.ok_or_else(|| format!("unparseable baseline record: {line}"))
        })
        .collect()
}

/// Loads and validates a `--check` baseline. A missing file, an
/// unparseable record, or an empty baseline all mean the gate cannot
/// defend anything — each is reported as one summary line so CI logs
/// show the cause directly instead of a panic backtrace.
fn load_baseline(path: &str) -> Result<Vec<BaselineRecord>, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("baseline {path} unreadable: {e}"))?;
    let baseline = parse_baseline(&json).map_err(|e| format!("baseline {path}: {e}"))?;
    if baseline.is_empty() {
        return Err(format!("baseline {path} holds no records"));
    }
    Ok(baseline)
}

/// `current` exceeding `baseline` by more than `rel · baseline + abs`.
fn exceeds(baseline: u64, current: u64, rel: f64, abs: u64) -> bool {
    current as f64 > baseline as f64 * (1.0 + rel) + abs as f64
}

/// `current` falling short of `baseline` by more than `rel · baseline + abs`.
fn falls_short(baseline: u64, current: u64, rel: f64, abs: u64) -> bool {
    (current as f64) < baseline as f64 * (1.0 - rel) - abs as f64
}

#[derive(Debug, Clone, Copy)]
struct CheckPolicy {
    gate_model: bool,
    strict_timing: bool,
}

fn check_against_baseline(
    baseline: &[BaselineRecord],
    outcomes: &[ServiceOutcome],
    only: Option<&str>,
    policy: CheckPolicy,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut timing_warnings = Vec::new();
    let mut compared = 0usize;
    for outcome in outcomes {
        let Some(base) = baseline.iter().find(|b| b.scenario == outcome.scenario) else {
            println!("  new scenario (no trend yet): {}", outcome.scenario);
            continue;
        };
        if let Some(recorded) = base.backend.as_deref() {
            if recorded != outcome.backend {
                violations.push(format!(
                    "{}: baseline was recorded by the {recorded} backend, this run used {} \
                     — diff against the matching BENCH_service artifact",
                    outcome.scenario, outcome.backend
                ));
                continue;
            }
        }
        compared += 1;
        let failed = outcome.rejected + outcome.stalled;
        println!(
            "  {}: committed {} -> {}, failed {} -> {}, unavail {} -> {} ticks",
            outcome.scenario,
            base.committed,
            outcome.committed,
            base.rejected + base.stalled,
            failed,
            base.unavail_ticks,
            outcome.unavail_ticks(),
        );
        if let (Some(before), now) = (base.wall_ms, outcome.elapsed_ms) {
            if before > 0.0 && now > 0.0 {
                let delta = now / before - 1.0;
                if delta.abs() > TIMING_REPORT_THRESHOLD {
                    let direction = if delta > 0.0 { "slower" } else { "faster" };
                    timing_warnings.push(format!(
                        "{}: {before:.1} ms -> {now:.1} ms ({:+.0}%, {direction})",
                        outcome.scenario,
                        delta * 100.0
                    ));
                }
            }
        }
        if !policy.gate_model {
            continue;
        }
        if outcome.requests != base.requests {
            violations.push(format!(
                "{}: request schedule changed {} -> {} (the workload is seed-deterministic; \
                 regenerate the baseline if the spec changed intentionally)",
                outcome.scenario, base.requests, outcome.requests
            ));
        }
        if falls_short(
            base.committed,
            outcome.committed,
            MAX_COMMIT_DROP,
            COUNT_SLACK,
        ) {
            violations.push(format!(
                "{}: committed dropped {} -> {} (limit {:.0}% + {COUNT_SLACK})",
                outcome.scenario,
                base.committed,
                outcome.committed,
                MAX_COMMIT_DROP * 100.0
            ));
        }
        let base_failed = base.rejected + base.stalled;
        if exceeds(base_failed, failed, MAX_FAILED_GROWTH, COUNT_SLACK) {
            violations.push(format!(
                "{}: failed requests grew {base_failed} -> {failed} (limit {:.0}% + {COUNT_SLACK})",
                outcome.scenario,
                MAX_FAILED_GROWTH * 100.0
            ));
        }
        if exceeds(
            base.unavail_ticks,
            outcome.unavail_ticks(),
            MAX_UNAVAIL_GROWTH,
            UNAVAIL_SLACK_TICKS,
        ) {
            violations.push(format!(
                "{}: unavailability grew {} -> {} ticks (limit {:.0}% + {UNAVAIL_SLACK_TICKS})",
                outcome.scenario,
                base.unavail_ticks,
                outcome.unavail_ticks(),
                MAX_UNAVAIL_GROWTH * 100.0
            ));
        }
        if exceeds(
            base.total_writes,
            outcome.total_writes,
            MAX_WRITE_REGRESSION,
            0,
        ) {
            violations.push(format!(
                "{}: total writes regressed {} -> {} (limit {:.0}%)",
                outcome.scenario,
                base.total_writes,
                outcome.total_writes,
                MAX_WRITE_REGRESSION * 100.0
            ));
        }
        // The drain SLO is absolute, not a trend: with a fail-fast bound
        // configured every request must terminate by `arrival + bound`,
        // so any breach fails the gate even if the baseline carried one.
        if outcome.stall_bound_breaches > 0 {
            violations.push(format!(
                "{}: {} request(s) outlived the stall bound (the ledger must drain to zero)",
                outcome.scenario, outcome.stall_bound_breaches
            ));
        }
    }
    if timing_warnings.is_empty() {
        println!(
            "  timing: all {compared} compared scenario(s) within ±{:.0}%",
            TIMING_REPORT_THRESHOLD * 100.0
        );
    } else {
        println!(
            "  timing: {} of {compared} compared scenario(s) beyond ±{:.0}%{}:",
            timing_warnings.len(),
            TIMING_REPORT_THRESHOLD * 100.0,
            if policy.strict_timing {
                " (strict: failing)"
            } else {
                " (warning; --strict-timing fails the run)"
            }
        );
        for warning in &timing_warnings {
            println!("    {warning}");
        }
        if policy.strict_timing {
            violations.extend(
                timing_warnings
                    .into_iter()
                    .map(|w| format!("timing (strict): {w}")),
            );
        }
    }
    for base in baseline {
        let filtered_out = only.is_some_and(|f| !base.scenario.contains(f));
        if !filtered_out && !outcomes.iter().any(|o| o.scenario == base.scenario) {
            println!("  baseline scenario no longer in suite: {}", base.scenario);
        }
    }
    violations
}

fn admits_filter(only: Option<&str>, name: &str) -> bool {
    only.is_none_or(|f| name.contains(f))
}

fn should_write_artifact(checking: bool, filtered: bool, explicit_out: bool) -> bool {
    explicit_out || (!checking && !filtered)
}

fn run_suite(backend: Backend, only: Option<&str>, workers: usize) -> (Table, Vec<ServiceOutcome>) {
    let mut table = Table::new(&[
        "scenario",
        "variant",
        "requests",
        "committed",
        "rejected",
        "stalled",
        "p50",
        "p99",
        "crashes",
        "unavail",
        "failed-in-window",
        "in-part-rej",
        "bound-breach",
        "stable",
    ]);
    let mut outcomes = Vec::new();
    for scenario in registry::all() {
        if !admits_filter(only, &scenario.name) {
            continue;
        }
        if !backend.admits(&scenario) {
            println!("skipping {} on {}", scenario.name, backend.name());
            continue;
        }
        let outcome = backend.run(&scenario, workers);
        table.row(&[
            outcome.scenario.clone(),
            outcome.variant.name().to_string(),
            outcome.requests.to_string(),
            outcome.committed.to_string(),
            outcome.rejected.to_string(),
            outcome.stalled.to_string(),
            outcome.commit_p50.to_string(),
            outcome.commit_p99.to_string(),
            outcome.windows.len().to_string(),
            outcome.unavail_ticks().to_string(),
            (outcome.unavail_rejected() + outcome.unavail_stalled()).to_string(),
            outcome.in_partition_rejected.to_string(),
            outcome.stall_bound_breaches.to_string(),
            outcome.stabilized.to_string(),
        ]);
        outcomes.push(outcome);
    }
    (table, outcomes)
}

fn usage() -> ! {
    eprintln!(
        "usage: service [--driver sim|coop|threads] [--workers N] [--check BASELINE.json] [--strict-timing] [--only SUBSTRING] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut check_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut backend = Backend::Sim;
    let mut workers = 1usize;
    let mut strict_timing = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => usage(),
            },
            "--only" => match args.next() {
                Some(filter) => only = Some(filter),
                None => usage(),
            },
            "--driver" => match args.next().as_deref().and_then(Backend::parse) {
                Some(parsed) => backend = parsed,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|raw| raw.parse::<usize>().ok()) {
                Some(parsed) if parsed > 0 => workers = parsed,
                _ => usage(),
            },
            "--strict-timing" => strict_timing = true,
            "--list" => {
                let scenarios = registry::all();
                let width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(0);
                for scenario in &scenarios {
                    let eligible = scenario.election.eligible_drivers();
                    let mut drivers = vec!["sim"];
                    if eligible.coop {
                        drivers.push("coop");
                    }
                    if eligible.threads {
                        drivers.push("threads");
                    }
                    println!(
                        "{:width$}  [{}]  {} clients, {} crash(es)",
                        scenario.name,
                        drivers.join(" "),
                        scenario.workload.clients,
                        scenario.election.crashes.len(),
                    );
                }
                return;
            }
            _ => usage(),
        }
    }
    if check_path.is_some() && !backend.gates_model_counters() {
        println!(
            "note: {} outcomes are schedule-dependent — counters are reported only, the gate compares timing{}",
            backend.name(),
            if strict_timing {
                ""
            } else {
                " (and only warns without --strict-timing)"
            }
        );
    }

    if workers > 1 && backend != Backend::Coop {
        println!(
            "note: --workers only affects the coop backend; {} ignores it",
            backend.name()
        );
    }

    let (table, outcomes) = run_suite(backend, only.as_deref(), workers);
    if outcomes.is_empty() {
        eprintln!(
            "no service scenario matches --only {:?} on the {} backend; see --list",
            only.unwrap_or_default(),
            backend.name()
        );
        std::process::exit(2);
    }
    println!(
        "== service suite ({} scenarios, {} backend) ==",
        outcomes.len(),
        backend.name()
    );
    println!("{table}");

    let mut failover = String::new();
    for outcome in &outcomes {
        for window in &outcome.windows {
            let _ = writeln!(
                failover,
                "  {}: crash @{} -> healed {} ({} ticks; {} rejected, {} stalled inside)",
                outcome.scenario,
                window.crash_at,
                window
                    .healed_at
                    .map_or("never".to_string(), |t| format!("@{t}")),
                window.duration(outcome.horizon),
                window.rejected,
                window.stalled,
            );
        }
    }
    if !failover.is_empty() {
        println!("== failover unavailability ==");
        print!("{failover}");
    }

    let out_path = std::env::var("BENCH_OUT").ok();
    if should_write_artifact(check_path.is_some(), only.is_some(), out_path.is_some()) {
        let records: Vec<String> = outcomes.iter().map(ServiceOutcome::json_record).collect();
        let json = format!("[\n  {}\n]\n", records.join(",\n  "));
        let path = out_path.unwrap_or_else(|| match backend {
            Backend::Sim => "BENCH_service.json".into(),
            other => format!("BENCH_service.{}.json", other.name()),
        });
        std::fs::write(&path, &json).expect("write service outcomes JSON");
        println!("wrote {} records to {path}", records.len());
    } else if only.is_some() && check_path.is_none() {
        println!("partial run (--only): baseline not written; set BENCH_OUT to export");
    }

    if let Some(path) = check_path {
        let baseline = load_baseline(&path).unwrap_or_else(|summary| {
            eprintln!("gate FAILED: {summary}");
            std::process::exit(1);
        });
        println!(
            "== regression gate vs {path} ({} records) ==",
            baseline.len()
        );
        let policy = CheckPolicy {
            gate_model: backend.gates_model_counters(),
            strict_timing,
        };
        let violations = check_against_baseline(&baseline, &outcomes, only.as_deref(), policy);
        if violations.is_empty() {
            if policy.gate_model {
                println!(
                    "gate PASSED: committed within -{:.0}%, failed within +{:.0}%, unavailability within +{:.0}% + {UNAVAIL_SLACK_TICKS} ticks, writes within +{:.0}%",
                    MAX_COMMIT_DROP * 100.0,
                    MAX_FAILED_GROWTH * 100.0,
                    MAX_UNAVAIL_GROWTH * 100.0,
                    MAX_WRITE_REGRESSION * 100.0,
                );
            } else {
                println!(
                    "gate PASSED: {} timing within ±{:.0}% of baseline{}",
                    backend.name(),
                    TIMING_REPORT_THRESHOLD * 100.0,
                    if policy.strict_timing {
                        ""
                    } else {
                        " (advisory without --strict-timing)"
                    }
                );
            }
            return;
        }
        eprintln!("gate FAILED:");
        for violation in &violations {
            eprintln!("  {violation}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"scenario":"failover/alg1","backend":"sim","variant":"alg1-fig2","n":5,"requests":3200,"committed":3000,"rejected":120,"stalled":80,"inflight":0,"commit_p50":40,"commit_p95":90,"commit_p99":400,"commit_max":5000,"crashes":1,"unavail_ticks":2600,"unavail_rejected":100,"unavail_stalled":80,"stabilized":true,"total_writes":60000,"log_slots":300,"wall_ms":15.250}
]
"#;

    fn base() -> BaselineRecord {
        parse_baseline(SAMPLE).unwrap().remove(0)
    }

    fn outcome_like(base: &BaselineRecord) -> ServiceOutcome {
        let scenario = registry::by_name(&base.scenario).unwrap();
        let ledger = omega_service::Ledger::new(Vec::new(), scenario.election.n);
        let mut outcome = ServiceOutcome::assemble(
            "sim",
            &scenario,
            &ledger,
            &[],
            true,
            base.total_writes,
            0,
            1.0,
        );
        outcome.requests = base.requests;
        outcome.committed = base.committed;
        outcome.rejected = base.rejected;
        outcome.stalled = base.stalled;
        outcome
    }

    #[test]
    fn parses_own_format() {
        let record = base();
        assert_eq!(record.scenario, "failover/alg1");
        assert_eq!(record.backend.as_deref(), Some("sim"));
        assert_eq!(record.requests, 3200);
        assert_eq!(record.committed, 3000);
        assert_eq!(record.unavail_ticks, 2600);
        assert_eq!(record.wall_ms, Some(15.25));
    }

    #[test]
    fn load_baseline_reports_each_failure_as_one_summary_line() {
        let missing = load_baseline("/nonexistent/BENCH_service.json").unwrap_err();
        assert!(missing.contains("unreadable"), "got: {missing}");
        assert!(!missing.contains('\n'), "one line, got: {missing}");

        let dir = std::env::temp_dir().join(format!("omega-svc-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let broken = dir.join("broken.json");
        std::fs::write(&broken, "[\n  {\"scenario\":\"a\"}\n]\n").unwrap();
        let err = load_baseline(broken.to_str().unwrap()).unwrap_err();
        assert!(err.contains("unparseable"), "got: {err}");

        let empty = dir.join("empty.json");
        std::fs::write(&empty, "[\n]\n").unwrap();
        let err = load_baseline(empty.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no records"), "got: {err}");

        let good = dir.join("good.json");
        std::fs::write(&good, SAMPLE).unwrap();
        assert_eq!(load_baseline(good.to_str().unwrap()).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_records_round_trip() {
        let scenario = registry::by_name("steady/alg1").unwrap();
        let outcome = ServiceSimDriver.run(&scenario);
        let parsed = parse_baseline(&format!("[\n  {}\n]\n", outcome.json_record())).unwrap();
        assert_eq!(parsed[0].scenario, "steady/alg1");
        assert_eq!(parsed[0].requests, outcome.requests);
        assert_eq!(parsed[0].committed, outcome.committed);
        assert_eq!(parsed[0].total_writes, outcome.total_writes);
        assert_eq!(parsed[0].stall_bound_breaches, Some(0));
        assert!(parsed[0].wall_ms.is_some());
    }

    #[test]
    fn unchanged_run_passes_the_gate() {
        let record = base();
        let outcome = outcome_like(&record);
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, policy);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn committed_drop_and_unavail_growth_fail_the_gate() {
        let record = base();
        let mut outcome = outcome_like(&record);
        outcome.committed = 2500; // > 5% + 5 drop
        outcome.windows = vec![omega_service::UnavailWindow {
            crash_at: 20_000,
            healed_at: Some(26_000), // 6 000 ticks > 2 600 × 1.25 + 500
            rejected: 0,
            stalled: 0,
        }];
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, policy);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(
            violations[0].contains("committed dropped"),
            "{violations:?}"
        );
        assert!(
            violations[1].contains("unavailability grew"),
            "{violations:?}"
        );
    }

    #[test]
    fn a_stall_bound_breach_fails_the_gate_absolutely() {
        // Pre-bound baselines carry no breach field, and it would not
        // matter if they did: the drain SLO is zero, not a trend.
        let record = base();
        assert_eq!(record.stall_bound_breaches, None);
        let mut outcome = outcome_like(&record);
        outcome.stall_bound_breaches = 3;
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, policy);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("outlived the stall bound"),
            "{violations:?}"
        );
    }

    #[test]
    fn request_schedule_change_is_flagged() {
        let record = base();
        let mut outcome = outcome_like(&record);
        outcome.requests += 1;
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, policy);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("request schedule changed"));
    }

    #[test]
    fn wall_clock_checks_gate_timing_only() {
        let record = base();
        let mut outcome = outcome_like(&record);
        outcome.committed = 0; // would fail every model gate
        outcome.elapsed_ms = record.wall_ms.unwrap() * 10.0;
        let advisory = CheckPolicy {
            gate_model: false,
            strict_timing: false,
        };
        assert!(
            check_against_baseline(
                std::slice::from_ref(&record),
                std::slice::from_ref(&outcome),
                None,
                advisory
            )
            .is_empty(),
            "wall-clock checks are advisory without --strict-timing"
        );
        let strict = CheckPolicy {
            gate_model: false,
            strict_timing: true,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, strict);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("timing (strict)"), "{violations:?}");
    }

    #[test]
    fn backend_mismatch_is_a_violation() {
        let mut record = base();
        record.backend = Some("coop".into());
        let outcome = outcome_like(&base());
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[record], &[outcome], None, policy);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("recorded by the coop backend"));
    }

    #[test]
    fn malformed_record_is_a_hard_error() {
        let broken = "[\n  {\"scenario\":\"a\",\"committed\":oops}\n]\n";
        assert!(parse_baseline(broken).unwrap_err().contains("unparseable"));
    }

    #[test]
    fn slack_helpers_cover_both_directions() {
        assert!(!exceeds(100, 125, 0.25, 0));
        assert!(exceeds(100, 126, 0.25, 0));
        assert!(!exceeds(100, 130, 0.25, 5));
        assert!(!falls_short(100, 95, 0.05, 0));
        assert!(falls_short(100, 94, 0.05, 0));
        assert!(!falls_short(100, 90, 0.05, 5));
        assert!(!exceeds(0, 5, 0.25, 5), "zero baselines keep the slack");
    }

    #[test]
    fn artifact_write_policy_matches_the_scenarios_bin() {
        assert!(should_write_artifact(false, false, false));
        assert!(!should_write_artifact(false, true, false));
        assert!(!should_write_artifact(true, false, false));
        assert!(should_write_artifact(true, false, true));
        assert!(should_write_artifact(false, true, true));
    }

    #[test]
    fn every_backend_name_parses_back() {
        for backend in [Backend::Sim, Backend::Coop, Backend::Threads] {
            assert_eq!(Backend::parse(backend.name()), Some(backend));
        }
        assert_eq!(Backend::parse("san"), None, "no disk substrate for the KV");
    }

    #[test]
    fn registry_scenarios_all_admit_sim_and_coop() {
        for scenario in registry::all() {
            assert!(Backend::Sim.admits(&scenario));
            assert!(Backend::Coop.admits(&scenario), "{}", scenario.name);
            assert!(Backend::Threads.admits(&scenario), "{}", scenario.name);
        }
    }
}
