//! Experiment E11 — the cross-variant comparison table.
//!
//! The paper's central trade-off (Section 5): Algorithm 1 is write-optimal
//! but needs one unbounded register; Algorithm 2 is fully bounded but every
//! process writes forever. The §3.5 variants trade register count (nWnR)
//! and clock hardware (step timer). This table puts all four on one common
//! AWB workload and reports every axis of the trade-off.

use omega_bench::table::Table;
use omega_bench::{run_election, AwbParams};
use omega_core::OmegaVariant;

fn main() {
    let n = 6;
    let horizon = 80_000;
    println!("== E11: variant comparison (n={n}, horizon={horizon}, common AWB workload) ==");
    println!();
    let mut t = Table::new(&[
        "variant",
        "registers",
        "stab tick",
        "tail writers",
        "tail regs written",
        "writes/1k (tail)",
        "hwm bits",
        "unbounded regs",
    ]);
    for variant in OmegaVariant::all() {
        let s = run_election(variant, n, horizon, AwbParams::for_variant(variant), None);
        assert!(s.stabilized, "{variant} must stabilize");
        t.row(&[
            s.variant.to_string(),
            s.register_count.to_string(),
            s.stable_from.map_or("-".into(), |v| v.to_string()),
            s.tail_writers.to_string(),
            s.tail_written_registers.to_string(),
            format!("{:.1}", s.tail_writes_per_1k),
            s.hwm_bits.to_string(),
            s.grown_in_tail.len().to_string(),
        ]);

        // The trade-off, asserted:
        match variant {
            OmegaVariant::Alg1 | OmegaVariant::StepClock => {
                assert_eq!(s.tail_writers, 1, "{variant}: write-optimal");
                assert!(
                    s.grown_in_tail.len() <= 1,
                    "{variant}: one unbounded register"
                );
            }
            OmegaVariant::Mwmr => {
                assert_eq!(s.tail_writers, 1, "{variant}: write-optimal");
                assert_eq!(
                    s.register_count,
                    3 * n,
                    "{variant}: linear register count (vs quadratic)"
                );
            }
            OmegaVariant::Alg2 => {
                assert_eq!(s.tail_writers, n, "{variant}: everyone writes forever");
                assert!(s.grown_in_tail.is_empty(), "{variant}: fully bounded");
            }
        }
    }
    println!("{t}");
    println!("shape check (the paper's inherent trade-off):");
    println!("  - alg1/mwmr/stepclock: 1 tail writer, 1 unbounded register");
    println!("  - alg2: n tail writers, 0 unbounded registers");
    println!("  - mwmr: 3n registers instead of n^2 + 2n");
}
