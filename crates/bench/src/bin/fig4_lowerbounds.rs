//! Experiments E6–E8 — Figure 4 / Lemmas 5–6 / Theorem 5: lower bounds.
//!
//! Replays the proofs' adversarial run constructions against deliberately
//! "optimized" (broken) algorithms and, as controls, against the paper's
//! real algorithms:
//!
//! * E6 (Lemma 5): a leader that stops writing is elected forever even
//!   after it crashes — the twin runs are indistinguishable to followers.
//! * E7 (Lemma 6): a follower that stops reading keeps trusting a corpse
//!   while everyone else re-elects.
//! * E8 (Theorem 5 / Corollary 1): a bounded-memory, single-writer Ω is
//!   starved by a state-aliasing schedule that Algorithm 2 (all processes
//!   writing) survives.

use omega_bench::table::Table;
use omega_lowerbound::{lemma5_control, lemma5_evidence, lemma6_evidence, theorem5_evidence};

fn main() {
    println!("== E6: Lemma 5 — the elected leader must write forever ==");
    let naive = lemma5_evidence(3, 5, 2_000, 20_000);
    let control = lemma5_control(3, 10_000, 40_000);
    let mut t = Table::new(&[
        "algorithm",
        "elected (live run)",
        "followers' views identical",
        "followers follow corpse",
        "violation",
    ]);
    t.row(&[
        "naive-silent-leader".to_string(),
        naive
            .elected_in_live_run
            .map_or("-".into(), |l| l.to_string()),
        naive.followers_views_identical.to_string(),
        naive.followers_follow_corpse.to_string(),
        naive.violation_demonstrated().to_string(),
    ]);
    t.row(&[
        "alg1-fig2 (control)".to_string(),
        control
            .elected_in_live_run
            .map_or("-".into(), |l| l.to_string()),
        control.followers_views_identical.to_string(),
        control.followers_follow_corpse.to_string(),
        control.violation_demonstrated().to_string(),
    ]);
    println!("{t}");
    assert!(naive.violation_demonstrated());
    assert!(!control.violation_demonstrated());

    println!("== E7: Lemma 6 — every non-leader must read forever ==");
    let deaf = lemma6_evidence(3, 200, 10_000, 60_000);
    let mut t = Table::new(&[
        "crashed leader",
        "deaf process",
        "deaf final estimate",
        "readers re-elected",
        "violation",
    ]);
    t.row(&[
        deaf.crashed_leader.map_or("-".into(), |l| l.to_string()),
        deaf.deaf_process.to_string(),
        deaf.deaf_final_estimate
            .map_or("-".into(), |l| l.to_string()),
        deaf.readers_reelected.to_string(),
        deaf.violation_demonstrated().to_string(),
    ]);
    println!("{t}");
    assert!(deaf.violation_demonstrated());

    println!("== E8: Theorem 5 / Corollary 1 — bounded memory needs everyone writing ==");
    let bounded = theorem5_evidence(2, 30_000);
    let mut t = Table::new(&[
        "algorithm",
        "shared hwm bits",
        "stabilized under aliasing",
        "split brain",
    ]);
    t.row(&[
        "frugal (1 bit/process, leader-only writes)".to_string(),
        bounded.frugal_hwm_bits.to_string(),
        bounded.frugal_stabilized.to_string(),
        bounded.frugal_split_brain.to_string(),
    ]);
    t.row(&[
        "alg2-fig5 (bounded, all write) [same schedule]".to_string(),
        "-".to_string(),
        bounded.alg2_stabilized.to_string(),
        "false".to_string(),
    ]);
    println!("{t}");
    assert!(bounded.bound_demonstrated());

    println!("shape check: each broken 'optimization' violates Eventual Leadership on");
    println!("the proof's run; the paper's algorithms survive identical constructions.");
}
