//! Experiment E12 — consensus and state-machine replication over Ω.
//!
//! The reason Ω matters: it is the weakest failure detector for
//! shared-memory consensus. This table drives the round-based consensus
//! layer over every Ω variant and reports decision latency (virtual time
//! until a decision exists, and until all correct processes know it), plus
//! a replicated-log throughput section with a leader crash mid-run.

use std::sync::Arc;

use omega_bench::table::Table;
use omega_consensus::{
    ConsensusActor, ConsensusInstance, ConsensusProcess, LogActor, LogHandle, LogShared,
};
use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_scenario::Scenario;
use omega_sim::Actor;

fn consensus_run(variant: OmegaVariant, n: usize, horizon: u64) -> (bool, Option<u64>, u64) {
    let (space, omegas) = variant.build_processes(n);
    let inst = ConsensusInstance::<u64>::new(&space, "C");
    let actors: Vec<Box<dyn Actor>> = omegas
        .into_iter()
        .map(|omega| {
            let pid = omega.pid();
            let proposer = ConsensusProcess::new(Arc::clone(&inst), pid, 700 + pid.index() as u64);
            Box::new(ConsensusActor::new(omega, proposer)) as Box<dyn Actor>
        })
        .collect();
    let scenario = Scenario::fault_free(variant, n)
        .named(format!("consensus-latency/{}", variant.name()))
        .awb(ProcessId::new(0), 500, 4)
        .seed(29)
        .horizon(horizon)
        .stats_checkpoints(32)
        .sample_every(100);
    let report = scenario.sim_builder(actors).memory(space.clone()).run();

    // Decision latency: first checkpoint window in which a DEC register was
    // written.
    let first_dec_tick = report
        .windowed
        .windows(32)
        .iter()
        .find(|w| {
            w.stats
                .written_registers()
                .iter()
                .any(|r| r.starts_with("C.DEC"))
        })
        .map(|w| w.end.ticks());
    (
        inst.peek_decision().is_some(),
        first_dec_tick,
        report.events_processed,
    )
}

fn main() {
    let n = 4;
    let horizon = 60_000;
    println!("== E12a: single-shot consensus latency per Omega variant (n={n}) ==");
    let mut t = Table::new(&["omega variant", "decided", "decision by tick", "events"]);
    for variant in OmegaVariant::all() {
        let (decided, first_dec, events) = consensus_run(variant, n, horizon);
        t.row(&[
            variant.name().to_string(),
            decided.to_string(),
            first_dec.map_or("-".into(), |v| v.to_string()),
            events.to_string(),
        ]);
        assert!(
            decided,
            "{variant}: consensus must decide once Ω stabilizes"
        );
    }
    println!("{t}");

    println!("== E12b: replicated log with leader crash mid-run (alg1, n=4) ==");
    let commands_per_replica = 5usize;
    let (space, omegas) = OmegaVariant::Alg1.build_processes(n);
    let shared = LogShared::<u64>::new(space);
    let actors: Vec<Box<dyn Actor>> = omegas
        .into_iter()
        .map(|omega| {
            let pid = omega.pid();
            let mut handle = LogHandle::new(Arc::clone(&shared), pid);
            for c in 0..commands_per_replica {
                handle.submit((pid.index() * 100 + c) as u64);
            }
            Box::new(LogActor::new(omega, handle)) as Box<dyn Actor>
        })
        .collect();
    let scenario = Scenario::fault_free(OmegaVariant::Alg1, n)
        .named("replicated-log-failover")
        .awb(ProcessId::new(3), 500, 4)
        .seed(31)
        .crash_leader_at(horizon / 3)
        .horizon(horizon * 2)
        .sample_every(100);
    let report = scenario.sim_builder(actors).run();

    let slots = shared.allocated_slots();
    let decided_slots = (0..slots)
        .filter(|&k| shared.instance(k).peek_decision().is_some())
        .count();
    let mut t = Table::new(&["crashed", "slots allocated", "slots decided", "horizon"]);
    t.row(&[
        report
            .crashed
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(","),
        slots.to_string(),
        decided_slots.to_string(),
        (horizon * 2).to_string(),
    ]);
    println!("{t}");
    // The three surviving replicas queued 15 commands; at minimum the
    // survivors' commands must all commit despite the crash.
    assert!(
        decided_slots >= commands_per_replica * (n - 1),
        "survivors' commands must commit after failover (got {decided_slots})"
    );
    println!(
        "throughput: {decided_slots} commands committed across the crash ({} queued by survivors)",
        commands_per_replica * (n - 1)
    );
    println!("shape check: consensus lives exactly as long as Ω does — every variant");
    println!("decides, and replication rides through a leader crash via re-election.");
}
