//! Scenario-suite benchmark: every registry scenario on the simulator,
//! with a machine-readable JSON artifact for perf trajectories.
//!
//! Prints the human table and writes `BENCH_scenarios.json` (same
//! directory, or `$BENCH_OUT` if set) with per-scenario stabilization
//! ticks, write/read totals, and footprint — the numbers a CI run can diff
//! against history.

use std::fmt::Write as _;

use omega_bench::table::Table;
use omega_scenario::{registry, Driver, Outcome, SimDriver};

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_record(outcome: &Outcome) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{{\"scenario\":{},\"backend\":{},\"variant\":{},\"n\":{},\"stabilized\":{},",
        json_str(&outcome.scenario),
        json_str(outcome.backend),
        json_str(outcome.variant.name()),
        outcome.n,
        outcome.stabilized,
    );
    let _ = match outcome.stabilization_ticks {
        Some(t) => write!(o, "\"stabilization_ticks\":{t},"),
        None => write!(o, "\"stabilization_ticks\":null,"),
    };
    let _ = write!(
        o,
        "\"horizon_ticks\":{},\"crashed\":{},\"total_writes\":{},\"total_reads\":{},\"hwm_bits\":{},\"register_count\":{},",
        outcome.horizon_ticks,
        outcome.crashed.len(),
        outcome.total_writes(),
        outcome.total_reads(),
        outcome.hwm_bits,
        outcome.register_count,
    );
    let _ = match &outcome.tail {
        Some(tail) => write!(
            o,
            "\"tail_writers\":{},\"tail_writes_per_1k\":{:.2}}}",
            tail.writers.len(),
            tail.writes_per_1k
        ),
        None => write!(o, "\"tail_writers\":null,\"tail_writes_per_1k\":null}}"),
    };
    o
}

fn main() {
    let mut table = Table::new(&[
        "scenario",
        "variant",
        "n",
        "expects",
        "stabilized",
        "stab tick",
        "writes",
        "hwm bits",
    ]);
    let mut records = Vec::new();
    for scenario in registry::all() {
        let outcome = SimDriver.run(&scenario);
        if scenario.expect_stabilization {
            outcome.assert_election();
        } else {
            // A final-sample coincidence may masquerade as agreement; the
            // necessity claim is that no *durable* stabilization exists.
            assert!(
                !outcome.stabilized_for(0.34),
                "{}: AWB-violating scenario stabilized anyway",
                scenario.name
            );
        }
        table.row(&[
            scenario.name.clone(),
            outcome.variant.name().to_string(),
            outcome.n.to_string(),
            scenario.expect_stabilization.to_string(),
            outcome.stabilized.to_string(),
            outcome
                .stabilization_ticks
                .map_or("-".into(), |t| t.to_string()),
            outcome.total_writes().to_string(),
            outcome.hwm_bits.to_string(),
        ]);
        records.push(json_record(&outcome));
    }
    println!(
        "== scenario suite ({} scenarios, sim backend) ==",
        records.len()
    );
    println!("{table}");

    let json = format!("[\n  {}\n]\n", records.join(",\n  "));
    let path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_scenarios.json".into());
    std::fs::write(&path, &json).expect("write BENCH_scenarios.json");
    println!("wrote {} records to {path}", records.len());
}
