//! Scenario-suite benchmark: every registry scenario on a chosen backend,
//! with a machine-readable JSON artifact for perf trajectories.
//!
//! Modes and flags:
//!
//! * **Record** (default) — prints the human table and the throughput
//!   table, and writes `BENCH_scenarios.json` (same directory, or
//!   `$BENCH_OUT` if set) with per-scenario stabilization ticks,
//!   read/write totals, scan savings, footprint, and wall-clock timing
//!   (`elapsed_ms`, `events_per_sec`) — the numbers a CI run can diff
//!   against history.
//! * **Check** (`--check <baseline.json>`) — runs the same suite, diffs
//!   every outcome against the committed baseline, and exits non-zero on a
//!   stabilization-tick regression above 25% or a total-write regression
//!   above 15%. Wall-clock deltas beyond ±50% are collected into a
//!   warning summary but do not fail the gate by default (timing is
//!   machine-dependent; the trajectory matters, not one noisy run); pass
//!   `--strict-timing` to promote those warnings to gate failures once a
//!   machine's numbers are stable enough to defend. Scenarios present
//!   only on one side are reported but never fail the gate (they have no
//!   trend yet). This is the CI regression gate named in ROADMAP's
//!   "Outcome diffing" item. The model-counter gates are defined on the
//!   simulator's deterministic counters; on the wall-clock drivers
//!   (`threads`/`san`/`coop`) a `--check` run compares **timing only**
//!   (counters there depend on the host's scheduling and would flake),
//!   so a wall-clock baseline becomes gateable exactly when
//!   `--strict-timing` is supplied.
//! * **`--driver sim|threads|san|coop`** — picks the backend (default
//!   `sim`). `threads` runs two OS threads per node over in-memory
//!   registers; `san` the same over disk-block registers (instant disk
//!   latency, so CI can exercise the backend without inflating
//!   wall-clock; `san-latency/…` sweep scenarios pin their own latency
//!   and pay real simulated service time); `coop` multiplexes all node
//!   loops on the cooperative deadline-wheel runtime, sharded over a
//!   `--workers`-sized pool. Every wall-clock backend skips scenarios
//!   that need a literal adversary (`expect_stabilization = false`); the
//!   per-node-thread backends additionally skip `n > 16` (OS threads at
//!   `n ≥ 32` thrash instead of measuring), while `coop` runs up to its
//!   worker-dependent cap `coop_max_n(workers)` — 128 single-worker,
//!   `n-scaling-256` at `--workers 4`, 512/1024 at 8/16. A full non-sim
//!   record run writes `BENCH_scenarios.<driver>.json`, never the
//!   committed sim baseline.
//! * **`--workers N`** — sizes the coop worker pool (default 1; the
//!   other backends ignore it). Every coop record carries a `workers`
//!   field, and a full (unfiltered) coop run additionally records the
//!   `coop/workers=1,2,4,8` sweep — `n-scaling-128` at each pool size,
//!   named by the convention `coop/workers=<w>` — so the committed coop
//!   baseline shows where the scaling knee sits.
//! * **`--only <substring>`** — restricts the run (and the gate) to the
//!   scenarios whose name contains the substring, so one scenario, e.g.
//!   `n-scaling-256`, can be run and timed in isolation. A filtered run
//!   never overwrites the default `BENCH_scenarios.json` (it would
//!   replace the committed full-suite baseline with a partial one); set
//!   `$BENCH_OUT` to export its records somewhere explicit.
//! * **`--list`** — prints the registry names and exits.
//!
//! The baseline parser is forward- and backward-compatible: fields in the
//! JSON that this binary does not know are ignored, and fields this binary
//! tracks that an older baseline lacks (e.g. `elapsed_ms`, the SAN block
//! footprint) simply have no trend yet — both directions are unit-tested,
//! so adding a field never invalidates committed baselines.

use std::fmt::Write as _;

use omega_bench::table::Table;
use omega_scenario::{
    registry, CoopDriver, Driver, Outcome, SanDriver, Scenario, SimDriver, ThreadDriver,
};

/// Allowed relative growth of `stabilization_ticks` before the gate fails.
const MAX_STABILIZATION_REGRESSION: f64 = 0.25;
/// Allowed relative growth of `total_writes` before the gate fails.
const MAX_WRITE_REGRESSION: f64 = 0.15;
/// Wall-clock delta (either direction) beyond which the gate collects a
/// timing warning. Advisory by default (timing is machine-dependent);
/// `--strict-timing` promotes these warnings to gate failures.
const TIMING_REPORT_THRESHOLD: f64 = 0.50;

/// The backend axis of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Sim,
    Threads,
    San,
    Coop,
}

impl Backend {
    fn parse(name: &str) -> Option<Backend> {
        match name {
            "sim" => Some(Backend::Sim),
            "threads" => Some(Backend::Threads),
            "san" => Some(Backend::San),
            "coop" => Some(Backend::Coop),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Threads => "threads",
            Backend::San => "san",
            Backend::Coop => "coop",
        }
    }

    fn run(self, scenario: &Scenario, workers: usize) -> Outcome {
        match self {
            Backend::Sim => SimDriver.run(scenario),
            Backend::Threads => ThreadDriver::default().run(scenario),
            Backend::San => SanDriver::instant().run(scenario),
            Backend::Coop => CoopDriver {
                workers,
                ..CoopDriver::default()
            }
            .run(scenario),
        }
    }

    /// Whether the backend's gate compares the deterministic model
    /// counters (stabilization ticks, write totals). Only the simulator's
    /// counters are reproducible; wall-clock backends gate on timing only.
    fn gates_model_counters(self) -> bool {
        self == Backend::Sim
    }

    /// Whether this backend can honor the scenario's contract — a
    /// straight read of the scenario crate's
    /// [`eligible_drivers_at`](Scenario::eligible_drivers_at), the single
    /// source of truth for the driver axis (see ROADMAP.md's table). The
    /// pool size only moves the coop column: its cap is
    /// `coop_max_n(workers)`.
    fn admits(self, scenario: &Scenario, workers: usize) -> bool {
        let eligible = scenario.eligible_drivers_at(workers);
        match self {
            Backend::Sim => eligible.sim,
            Backend::Threads => eligible.threads,
            Backend::San => eligible.san,
            Backend::Coop => eligible.coop,
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_record(outcome: &Outcome) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{{\"scenario\":{},\"backend\":{},\"variant\":{},\"n\":{},\"stabilized\":{},",
        json_str(&outcome.scenario),
        json_str(outcome.backend),
        json_str(outcome.variant.name()),
        outcome.n,
        outcome.stabilized,
    );
    if let Some(workers) = outcome.workers {
        let _ = write!(o, "\"workers\":{workers},");
    }
    let _ = match outcome.stabilization_ticks {
        Some(t) => write!(o, "\"stabilization_ticks\":{t},"),
        None => write!(o, "\"stabilization_ticks\":null,"),
    };
    let _ = write!(
        o,
        "\"horizon_ticks\":{},\"crashed\":{},\"total_writes\":{},\"total_reads\":{},\"reads_skipped\":{},\"shard_passes\":{},\"hwm_bits\":{},\"register_count\":{},\"elapsed_ms\":{:.2},\"events_per_sec\":{:.0},",
        outcome.horizon_ticks,
        outcome.crashed.len(),
        outcome.total_writes(),
        outcome.total_reads(),
        outcome.reads_skipped,
        outcome.shard_passes,
        outcome.hwm_bits,
        outcome.register_count,
        outcome.elapsed_ms,
        outcome.events_per_sec,
    );
    if let Some(san) = &outcome.san {
        let _ = write!(
            o,
            "\"san_blocks_mapped\":{},\"san_blocks_touched\":{},\"san_block_accesses\":{},\"san_service_ms\":{:.2},",
            san.blocks_mapped, san.blocks_touched, san.block_accesses, san.service_time_ms,
        );
    }
    if let Some(chaos) = &outcome.chaos {
        let _ = write!(
            o,
            "\"partitions\":{},\"partition_ticks\":{},\"storm_ticks\":{},\"wave_crashes\":{},\"wave_recoveries\":{},",
            chaos.partitions,
            chaos.partition_ticks,
            chaos.storm_ticks,
            chaos.wave_crashes,
            chaos.wave_recoveries,
        );
        let _ = match chaos.heal_to_stable_ticks {
            Some(t) => write!(o, "\"heal_to_stable_ticks\":{t},"),
            None => write!(o, "\"heal_to_stable_ticks\":null,"),
        };
    }
    if let Some(w) = &outcome.witness {
        let _ = write!(
            o,
            "\"witness_window_from\":{},\"witness_window_until\":{},\"witness_demotions\":{},\"witness_max_stable_streak_ticks\":{},\"witness_false_stable_ticks\":{},",
            w.window_from,
            w.window_until,
            w.demotions,
            w.max_stable_streak_ticks,
            w.false_stable_ticks,
        );
    }
    let _ = match &outcome.tail {
        Some(tail) => write!(
            o,
            "\"tail_writers\":{},\"tail_writes_per_1k\":{:.2}}}",
            tail.writers.len(),
            tail.writes_per_1k
        ),
        None => write!(o, "\"tail_writers\":null,\"tail_writes_per_1k\":null}}"),
    };
    o
}

/// The baseline fields the regression gate compares against.
///
/// Every field except `scenario` is *optional at parse time* in one of two
/// ways: the model counters are required (a record without them is
/// malformed — see [`parse_baseline`]), while `elapsed_ms` is `None` when
/// the baseline predates timing capture. Unknown fields in the JSON are
/// ignored entirely, so the format can grow without breaking old binaries.
#[derive(Debug, Clone, PartialEq)]
struct BaselineRecord {
    scenario: String,
    /// Which driver recorded the baseline (`"sim"` / `"threads"` /
    /// `"san"` / `"coop"`); `None` for baselines predating the field.
    /// Lets a check run refuse a baseline recorded by a different
    /// backend — a coop baseline diffed against a sim run would compare
    /// apples to schedulers.
    backend: Option<String>,
    stabilization_ticks: Option<u64>,
    total_writes: u64,
    total_reads: u64,
    /// Wall-clock of the baseline run; `None` for pre-timing baselines.
    elapsed_ms: Option<f64>,
    /// SAN block accesses; `None` for in-memory backends and baselines
    /// that predate the block-footprint fields.
    san_block_accesses: Option<u64>,
    /// Distinct SAN blocks touched; `None` as above.
    san_blocks_touched: Option<u64>,
    /// Non-election witness counters; `None` for electing scenarios and
    /// baselines predating the hostile suite. On the simulator these are
    /// exact functions of the spec, so the gate holds them byte-stable.
    witness_demotions: Option<u64>,
    /// Longest self-leading streak inside the hostile window; `None` as
    /// above.
    witness_max_stable_streak_ticks: Option<u64>,
    /// Self-leadership held beyond the witness allowance; must be zero
    /// for every committed non-electing record.
    witness_false_stable_ticks: Option<u64>,
}

/// Extracts the value of `"key":` from one flat JSON object, as a raw
/// token (up to the next `,` or `}` — sufficient for the numeric, null and
/// boolean fields this tool writes; string fields are not parsed here).
fn raw_field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = &object[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn string_field(object: &str, key: &str) -> Option<String> {
    let raw = raw_field(object, key)?;
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    // The only escapes this tool emits are \" and \\ (names are ASCII).
    Some(raw.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Parses the baseline JSON written by this tool: an array of flat
/// objects, one per line. Tolerates reformatting as long as each record
/// stays on its own line.
///
/// A line that looks like a record but does not parse is a **hard
/// error**: silently dropping it would let the gate treat its scenario
/// as "new — no trend yet" and wave a real regression through.
fn parse_baseline(json: &str) -> Result<Vec<BaselineRecord>, String> {
    json.lines()
        .map(str::trim)
        .filter(|line| line.starts_with('{'))
        .map(|line| {
            let parsed = (|| {
                Some(BaselineRecord {
                    scenario: string_field(line, "scenario")?,
                    // Absent in pre-backend baselines: unknown, not an error.
                    backend: string_field(line, "backend"),
                    stabilization_ticks: match raw_field(line, "stabilization_ticks")? {
                        "null" => None,
                        raw => Some(raw.parse().ok()?),
                    },
                    total_writes: raw_field(line, "total_writes")?.parse().ok()?,
                    total_reads: raw_field(line, "total_reads")?.parse().ok()?,
                    // Absent in pre-timing baselines: no trend, not an error.
                    elapsed_ms: raw_field(line, "elapsed_ms").and_then(|raw| raw.parse().ok()),
                    // Absent for in-memory backends and pre-SAN baselines.
                    san_block_accesses: raw_field(line, "san_block_accesses")
                        .and_then(|raw| raw.parse().ok()),
                    san_blocks_touched: raw_field(line, "san_blocks_touched")
                        .and_then(|raw| raw.parse().ok()),
                    // Absent for electing scenarios and pre-hostile baselines.
                    witness_demotions: raw_field(line, "witness_demotions")
                        .and_then(|raw| raw.parse().ok()),
                    witness_max_stable_streak_ticks: raw_field(
                        line,
                        "witness_max_stable_streak_ticks",
                    )
                    .and_then(|raw| raw.parse().ok()),
                    witness_false_stable_ticks: raw_field(line, "witness_false_stable_ticks")
                        .and_then(|raw| raw.parse().ok()),
                })
            })();
            parsed.ok_or_else(|| format!("unparseable baseline record: {line}"))
        })
        .collect()
}

/// Loads and validates a `--check` baseline. A missing file, an
/// unparseable record, or an empty baseline all mean the gate cannot
/// defend anything — each is reported as one summary line so CI logs
/// show the cause directly instead of a panic backtrace.
fn load_baseline(path: &str) -> Result<Vec<BaselineRecord>, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("baseline {path} unreadable: {e}"))?;
    let baseline = parse_baseline(&json).map_err(|e| format!("baseline {path}: {e}"))?;
    if baseline.is_empty() {
        return Err(format!("baseline {path} holds no records"));
    }
    Ok(baseline)
}

/// Relative growth of `current` over `baseline` (0.0 when not a growth).
fn growth(baseline: u64, current: u64) -> f64 {
    if current <= baseline || baseline == 0 {
        return 0.0;
    }
    (current - baseline) as f64 / baseline as f64
}

/// Relative wall-clock change `current / baseline − 1` when the baseline
/// carries timing and both sides are measurable; `None` otherwise.
fn timing_delta(base: &BaselineRecord, outcome: &Outcome) -> Option<f64> {
    let before = base.elapsed_ms?;
    if before <= 0.0 || outcome.elapsed_ms <= 0.0 {
        return None;
    }
    Some(outcome.elapsed_ms / before - 1.0)
}

/// How a check run gates: which comparisons are defended, and whether
/// timing drift fails the run.
#[derive(Debug, Clone, Copy)]
struct CheckPolicy {
    /// Compare the deterministic model counters (simulator only).
    gate_model: bool,
    /// Promote timing warnings beyond [`TIMING_REPORT_THRESHOLD`] from a
    /// summary line to gate failures (`--strict-timing`).
    strict_timing: bool,
}

/// Diffs current outcomes against the baseline; returns human-readable
/// gate violations (empty = gate passes). Wall-clock changes beyond
/// [`TIMING_REPORT_THRESHOLD`] are collected into a warning summary and
/// only fail the gate under `--strict-timing`.
fn check_against_baseline(
    baseline: &[BaselineRecord],
    outcomes: &[Outcome],
    only: Option<&str>,
    policy: CheckPolicy,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut timing_warnings = Vec::new();
    let mut compared = 0usize;
    for outcome in outcomes {
        let Some(base) = baseline.iter().find(|b| b.scenario == outcome.scenario) else {
            println!("  new scenario (no trend yet): {}", outcome.scenario);
            continue;
        };
        if let Some(recorded) = base.backend.as_deref() {
            if recorded != outcome.backend {
                violations.push(format!(
                    "{}: baseline was recorded by the {recorded} backend, this run used {} \
                     — diff against the matching BENCH_scenarios artifact",
                    outcome.scenario, outcome.backend
                ));
                continue;
            }
        }
        compared += 1;
        println!(
            "  {}: stab {:?} -> {:?}, writes {} -> {}, reads {} -> {}",
            outcome.scenario,
            base.stabilization_ticks,
            outcome.stabilization_ticks,
            base.total_writes,
            outcome.total_writes(),
            base.total_reads,
            outcome.total_reads(),
        );
        if let Some(delta) = timing_delta(base, outcome) {
            if delta.abs() > TIMING_REPORT_THRESHOLD {
                let direction = if delta > 0.0 { "slower" } else { "faster" };
                timing_warnings.push(format!(
                    "{}: {:.1} ms -> {:.1} ms ({:+.0}%, {direction})",
                    outcome.scenario,
                    base.elapsed_ms.unwrap_or(0.0),
                    outcome.elapsed_ms,
                    delta * 100.0
                ));
            }
        }
        if !policy.gate_model {
            // Wall-clock backends: stabilization ticks and write totals
            // depend on the host's scheduling — report them above, gate
            // only the timing trend.
            continue;
        }
        match (base.stabilization_ticks, outcome.stabilization_ticks) {
            (Some(before), Some(now)) => {
                let g = growth(before, now);
                if g > MAX_STABILIZATION_REGRESSION {
                    violations.push(format!(
                        "{}: stabilization regressed {before} -> {now} ticks (+{:.0}%, limit {:.0}%)",
                        outcome.scenario,
                        g * 100.0,
                        MAX_STABILIZATION_REGRESSION * 100.0
                    ));
                }
            }
            (Some(before), None) => violations.push(format!(
                "{}: stabilized at tick {before} in the baseline, did not stabilize now",
                outcome.scenario
            )),
            // Baseline never stabilized: stabilizing now is an improvement.
            (None, _) => {}
        }
        let g = growth(base.total_writes, outcome.total_writes());
        if g > MAX_WRITE_REGRESSION {
            violations.push(format!(
                "{}: total writes regressed {} -> {} (+{:.0}%, limit {:.0}%)",
                outcome.scenario,
                base.total_writes,
                outcome.total_writes(),
                g * 100.0,
                MAX_WRITE_REGRESSION * 100.0
            ));
        }
        // Non-election witness: the certificate behind every
        // expect = false record. Any stable reign fails the gate
        // outright, and because the simulator replays exactly, the
        // witness counters must match the committed record byte-for-byte
        // — drift means the hostile environment changed, not noise.
        if let Some(w) = &outcome.witness {
            if w.false_stable_ticks > 0 {
                violations.push(format!(
                    "{}: witness shows a stable reign under hostile chaos: \
                     {} false-stable ticks (max streak {} over {}..{})",
                    outcome.scenario,
                    w.false_stable_ticks,
                    w.max_stable_streak_ticks,
                    w.window_from,
                    w.window_until,
                ));
            }
            if let (Some(demotions), Some(streak)) =
                (base.witness_demotions, base.witness_max_stable_streak_ticks)
            {
                if demotions != w.demotions || streak != w.max_stable_streak_ticks {
                    violations.push(format!(
                        "{}: witness drifted from the committed record: demotions \
                         {demotions} -> {}, max streak {streak} -> {} (sim replay is exact)",
                        outcome.scenario, w.demotions, w.max_stable_streak_ticks,
                    ));
                }
            }
        }
    }
    if timing_warnings.is_empty() {
        println!(
            "  timing: all {compared} compared scenario(s) within ±{:.0}%",
            TIMING_REPORT_THRESHOLD * 100.0
        );
    } else {
        println!(
            "  timing: {} of {compared} compared scenario(s) beyond ±{:.0}%{}:",
            timing_warnings.len(),
            TIMING_REPORT_THRESHOLD * 100.0,
            if policy.strict_timing {
                " (strict: failing)"
            } else {
                " (warning; --strict-timing fails the run)"
            }
        );
        for warning in &timing_warnings {
            println!("    {warning}");
        }
        if policy.strict_timing {
            violations.extend(
                timing_warnings
                    .into_iter()
                    .map(|w| format!("timing (strict): {w}")),
            );
        }
    }
    for base in baseline {
        let filtered_out = only.is_some_and(|f| !base.scenario.contains(f));
        if !filtered_out && !outcomes.iter().any(|o| o.scenario == base.scenario) {
            println!("  baseline scenario no longer in suite: {}", base.scenario);
        }
    }
    violations
}

/// Whether `--only <filter>` admits the scenario (no filter admits all).
fn admits(only: Option<&str>, name: &str) -> bool {
    only.is_none_or(|f| name.contains(f))
}

/// Whether this run writes the outcomes JSON. An explicit `$BENCH_OUT`
/// always does; otherwise only a full (unfiltered) record run may touch
/// the default `BENCH_scenarios.json` — a `--only` subset or a gate run
/// must never overwrite the committed full-suite baseline.
fn should_write_artifact(checking: bool, filtered: bool, explicit_out: bool) -> bool {
    explicit_out || (!checking && !filtered)
}

/// Why `backend` refuses `scenario` — the loud half of the admission
/// matrix. Campaign clauses a wall clock cannot honor are named
/// explicitly (a silent drop would record an outcome for a scenario the
/// driver never actually realized), and the coop size cap states the
/// worker-dependent rule it actually enforces, including the pool that
/// would admit the scenario.
fn refusal_rule(backend: Backend, scenario: &Scenario, workers: usize) -> String {
    debug_assert!(!backend.admits(scenario, workers));
    if !scenario.expect_stabilization && backend != Backend::Sim {
        return "non-electing scenarios are certified by the simulator's literal adversary \
                and witness; a wall clock cannot defend the negative"
            .into();
    }
    if let Some(campaign) = &scenario.campaign {
        if campaign.has_recovery() && backend != Backend::Sim {
            return "campaign recovery waves are sim-only: a parked wall-clock thread cannot be resurrected".into();
        }
        if campaign.has_storm() && matches!(backend, Backend::Threads | Backend::Coop) {
            return "campaign latency storms need a simulated medium (sim, or the SAN block device)"
                .into();
        }
    }
    match backend {
        Backend::Sim => format!(
            "the simulator's literal realization is memory-cubic in n, so it runs n <= {}; \
             larger systems belong on the sharded coop pool",
            omega_scenario::SIM_MAX_N,
        ),
        Backend::Threads | Backend::San => {
            "per-node-thread backends run stabilizing scenarios at n <= 16".into()
        }
        Backend::Coop => {
            let needed = scenario.n.div_ceil(omega_scenario::COOP_NODES_PER_WORKER);
            format!(
                "coop at {workers} worker(s) runs stabilizing scenarios at n <= {}; \
                 --workers {needed} would admit n = {}",
                omega_scenario::coop_max_n(workers),
                scenario.n,
            )
        }
    }
}

/// The pool sizes of the `coop/workers=` sweep: `n-scaling-128` once per
/// size, recorded under the sweep's own scenario names so the committed
/// coop baseline shows the scaling knee.
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn run_suite(backend: Backend, only: Option<&str>, workers: usize) -> (Table, Vec<Outcome>) {
    let mut table = Table::new(&[
        "scenario",
        "variant",
        "n",
        "expects",
        "stabilized",
        "stab tick",
        "writes",
        "reads",
        "skipped",
        "hwm bits",
        "blk acc",
        "disk ms",
    ]);
    let mut outcomes = Vec::new();
    let mut suite = registry::all();
    // The worker sweep rides along on every full coop run (record *and*
    // check, so the nightly gate diffs it too): the same n = 128 probe at
    // each pool size, under the sweep's own scenario names. A `--only`
    // run skips it — the sweep is a suite-level artifact, not a scenario.
    if backend == Backend::Coop && only.is_none() {
        suite.extend(WORKER_SWEEP.iter().map(|&w| {
            registry::n_scaling(&[128])
                .pop()
                .expect("n-scaling family builds")
                .named(format!("coop/workers={w}"))
        }));
    }
    for scenario in suite {
        let sweep_workers = scenario
            .name
            .strip_prefix("coop/workers=")
            .and_then(|w| w.parse().ok());
        let workers = sweep_workers.unwrap_or(workers);
        if !admits(only, &scenario.name) {
            continue;
        }
        if !backend.admits(&scenario, workers) {
            println!(
                "skipping {} on {} ({})",
                scenario.name,
                backend.name(),
                refusal_rule(backend, &scenario, workers)
            );
            continue;
        }
        let outcome = backend.run(&scenario, workers);
        if scenario.expect_stabilization {
            outcome.assert_election();
        } else {
            // A final-sample coincidence may masquerade as agreement; the
            // necessity claim is that no *durable* stabilization exists.
            assert!(
                !outcome.stabilized_for(0.34),
                "{}: AWB-violating scenario stabilized anyway",
                scenario.name
            );
        }
        table.row(&[
            scenario.name.clone(),
            outcome.variant.name().to_string(),
            outcome.n.to_string(),
            scenario.expect_stabilization.to_string(),
            outcome.stabilized.to_string(),
            outcome
                .stabilization_ticks
                .map_or("-".into(), |t| t.to_string()),
            outcome.total_writes().to_string(),
            outcome.total_reads().to_string(),
            outcome.reads_skipped.to_string(),
            outcome.hwm_bits.to_string(),
            outcome
                .san
                .map_or("-".into(), |s| s.block_accesses.to_string()),
            outcome
                .san
                .map_or("-".into(), |s| format!("{:.1}", s.service_time_ms)),
        ]);
        outcomes.push(outcome);
    }
    (table, outcomes)
}

/// The wall-clock view of a suite run: how long each scenario took and how
/// fast the engine retired events — the numbers the tentpole optimizations
/// are judged by.
fn throughput_table(outcomes: &[Outcome]) -> Table {
    let mut table = Table::new(&[
        "scenario",
        "n",
        "workers",
        "elapsed ms",
        "events/sec",
        "reads/sec",
    ]);
    for outcome in outcomes {
        let secs = outcome.elapsed_ms / 1e3;
        let reads_per_sec = if secs > 0.0 {
            outcome.total_reads() as f64 / secs
        } else {
            0.0
        };
        table.row(&[
            outcome.scenario.clone(),
            outcome.n.to_string(),
            outcome.workers.map_or("-".into(), |w| w.to_string()),
            format!("{:.1}", outcome.elapsed_ms),
            format!("{:.0}", outcome.events_per_sec),
            format!("{reads_per_sec:.0}"),
        ]);
    }
    table
}

fn usage() -> ! {
    eprintln!(
        "usage: scenarios [--driver sim|threads|san|coop] [--workers N] [--check BASELINE.json] [--strict-timing] [--only SUBSTRING] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut check_path: Option<String> = None;
    let mut only: Option<String> = None;
    let mut backend = Backend::Sim;
    let mut strict_timing = false;
    let mut workers = 1usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => usage(),
            },
            "--only" => match args.next() {
                Some(filter) => only = Some(filter),
                None => usage(),
            },
            "--driver" => match args.next().as_deref().and_then(Backend::parse) {
                Some(parsed) => backend = parsed,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(parsed) if parsed > 0 => workers = parsed,
                _ => usage(),
            },
            "--strict-timing" => strict_timing = true,
            "--list" => {
                // Name + expected outcome + the drivers that admit the
                // scenario, so both the expectation axis (elect /
                // no-elect) and the driver-axis table are discoverable
                // from the CLI. Coop's cap is worker-dependent: a
                // scenario refused at the single-worker default but
                // admitted by a larger pool is listed with the pool that
                // admits it.
                let scenarios = registry::all();
                let width = scenarios.iter().map(|s| s.name.len()).max().unwrap_or(0);
                for scenario in &scenarios {
                    let mut names: Vec<String> = scenario
                        .eligible_drivers()
                        .names()
                        .into_iter()
                        .map(String::from)
                        .collect();
                    if !scenario.eligible_drivers().coop {
                        let needed = scenario.n.div_ceil(omega_scenario::COOP_NODES_PER_WORKER);
                        if scenario.eligible_drivers_at(needed).coop {
                            names.push(format!("coop(--workers {needed})"));
                        }
                    }
                    let expect = if scenario.expect_stabilization {
                        "elect"
                    } else {
                        "no-elect"
                    };
                    println!(
                        "{:width$}  {expect:8}  [{}]",
                        scenario.name,
                        names.join(" ")
                    );
                }
                return;
            }
            _ => usage(),
        }
    }
    if workers > 1 && backend != Backend::Coop {
        println!(
            "note: --workers sizes the coop pool; the {} backend ignores it",
            backend.name()
        );
    }
    if check_path.is_some() && !backend.gates_model_counters() {
        println!(
            "note: {} outcomes are schedule-dependent — model counters are reported only, the gate compares timing{}",
            backend.name(),
            if strict_timing { "" } else { " (and only warns without --strict-timing)" }
        );
    }

    let (table, outcomes) = run_suite(backend, only.as_deref(), workers);
    if outcomes.is_empty() {
        eprintln!(
            "no scenario matches --only {:?} on the {} backend; see --list",
            only.unwrap_or_default(),
            backend.name()
        );
        std::process::exit(2);
    }
    println!(
        "== scenario suite ({} scenarios, {} backend) ==",
        outcomes.len(),
        backend.name()
    );
    println!("{table}");
    println!("== throughput ==");
    println!("{}", throughput_table(&outcomes));

    // Full record runs always write the artifact; check runs and
    // `--only`-filtered runs only when `$BENCH_OUT` names an explicit
    // destination (a CI gate run publishes its outcomes without a second
    // suite run; a filtered run must never clobber the committed
    // full-suite baseline with a partial one). Non-sim backends get their
    // own per-driver artifact for the same reason.
    let out_path = std::env::var("BENCH_OUT").ok();
    if should_write_artifact(check_path.is_some(), only.is_some(), out_path.is_some()) {
        let records: Vec<String> = outcomes.iter().map(json_record).collect();
        let json = format!("[\n  {}\n]\n", records.join(",\n  "));
        let path = out_path.unwrap_or_else(|| match backend {
            Backend::Sim => "BENCH_scenarios.json".into(),
            other => format!("BENCH_scenarios.{}.json", other.name()),
        });
        std::fs::write(&path, &json).expect("write scenario outcomes JSON");
        println!("wrote {} records to {path}", records.len());
    } else if only.is_some() && check_path.is_none() {
        println!("partial run (--only): baseline not written; set BENCH_OUT to export");
    }

    if let Some(path) = check_path {
        let baseline = load_baseline(&path).unwrap_or_else(|summary| {
            eprintln!("gate FAILED: {summary}");
            std::process::exit(1);
        });
        println!(
            "== regression gate vs {path} ({} records) ==",
            baseline.len()
        );
        let policy = CheckPolicy {
            gate_model: backend.gates_model_counters(),
            strict_timing,
        };
        let violations = check_against_baseline(&baseline, &outcomes, only.as_deref(), policy);
        if violations.is_empty() {
            match (policy.gate_model, policy.strict_timing) {
                (true, false) => println!(
                    "gate PASSED: no stabilization regression > {:.0}%, no write regression > {:.0}%",
                    MAX_STABILIZATION_REGRESSION * 100.0,
                    MAX_WRITE_REGRESSION * 100.0
                ),
                (true, true) => println!(
                    "gate PASSED: model counters within limits, timing within ±{:.0}%",
                    TIMING_REPORT_THRESHOLD * 100.0
                ),
                (false, _) => println!(
                    "gate PASSED: {} timing within ±{:.0}% of baseline{}",
                    backend.name(),
                    TIMING_REPORT_THRESHOLD * 100.0,
                    if policy.strict_timing {
                        ""
                    } else {
                        " (advisory without --strict-timing)"
                    }
                ),
            }
            return;
        }
        eprintln!("gate FAILED:");
        for violation in &violations {
            eprintln!("  {violation}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"scenario":"a","backend":"sim","stabilization_ticks":1000,"total_writes":500,"total_reads":9000,"elapsed_ms":125.50},
  {"scenario":"no-stab","backend":"sim","stabilization_ticks":null,"total_writes":100,"total_reads":50}
]
"#;

    #[test]
    fn parses_own_format() {
        let records = parse_baseline(SAMPLE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].scenario, "a");
        assert_eq!(records[0].stabilization_ticks, Some(1000));
        assert_eq!(records[0].total_writes, 500);
        assert_eq!(records[0].elapsed_ms, Some(125.5));
        assert_eq!(records[1].stabilization_ticks, None);
        assert_eq!(
            records[1].elapsed_ms, None,
            "pre-timing records parse with no timing trend"
        );
    }

    #[test]
    fn load_baseline_reports_each_failure_as_one_summary_line() {
        let missing = load_baseline("/nonexistent/BENCH_scenarios.json").unwrap_err();
        assert!(missing.contains("unreadable"), "got: {missing}");
        assert!(!missing.contains('\n'), "one line, got: {missing}");

        let dir = std::env::temp_dir().join(format!("omega-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let broken = dir.join("broken.json");
        std::fs::write(&broken, "[\n  {\"scenario\":\"a\"}\n]\n").unwrap();
        let err = load_baseline(broken.to_str().unwrap()).unwrap_err();
        assert!(err.contains("unparseable"), "got: {err}");

        let empty = dir.join("empty.json");
        std::fs::write(&empty, "[\n]\n").unwrap();
        let err = load_baseline(empty.to_str().unwrap()).unwrap_err();
        assert!(err.contains("no records"), "got: {err}");

        let good = dir.join("good.json");
        std::fs::write(&good, SAMPLE).unwrap();
        assert_eq!(load_baseline(good.to_str().unwrap()).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tolerates_json_fields_the_struct_does_not_know() {
        // Forward compatibility: a *newer* tool may write fields this
        // binary has never heard of; they must be skipped, not rejected.
        let futuristic = "[\n  {\"scenario\":\"a\",\"stabilization_ticks\":10,\"total_writes\":5,\"total_reads\":7,\"cache_misses\":12345,\"elapsed_ms\":3.25,\"p99_us\":17}\n]\n";
        let records = parse_baseline(futuristic).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].total_writes, 5);
        assert_eq!(records[0].elapsed_ms, Some(3.25));
    }

    #[test]
    fn tolerates_struct_fields_the_json_lacks() {
        // Backward compatibility: an *older* baseline lacks the optional
        // timing fields entirely; everything required still parses and the
        // timing comparison simply reports no trend.
        let legacy = "[\n  {\"scenario\":\"a\",\"stabilization_ticks\":10,\"total_writes\":5,\"total_reads\":7}\n]\n";
        let records = parse_baseline(legacy).unwrap();
        assert_eq!(records[0].elapsed_ms, None);
        let outcome_less = BaselineRecord {
            scenario: "a".into(),
            backend: None,
            stabilization_ticks: Some(10),
            total_writes: 5,
            total_reads: 7,
            elapsed_ms: None,
            san_block_accesses: None,
            san_blocks_touched: None,
            witness_demotions: None,
            witness_max_stable_streak_ticks: None,
            witness_false_stable_ticks: None,
        };
        assert_eq!(records[0], outcome_less);
    }

    #[test]
    fn san_block_footprint_fields_round_trip() {
        // A record written from a SAN outcome must parse its block
        // footprint back; sim records (no `san_*` fields) must keep
        // parsing with no SAN trend. Exercised against a real record from
        // each backend below.
        let san_line = "[\n  {\"scenario\":\"s\",\"stabilization_ticks\":10,\"total_writes\":5,\"total_reads\":7,\"san_blocks_mapped\":24,\"san_blocks_touched\":20,\"san_block_accesses\":991,\"san_service_ms\":12.50}\n]\n";
        let records = parse_baseline(san_line).unwrap();
        assert_eq!(records[0].san_block_accesses, Some(991));
        assert_eq!(records[0].san_blocks_touched, Some(20));
    }

    #[test]
    fn json_record_carries_san_fields_exactly_for_the_san_backend() {
        let scenario = omega_scenario::Scenario::fault_free(omega_core::OmegaVariant::Alg1, 2)
            .named("san-sample")
            .horizon(40_000);
        let outcome = omega_scenario::SanDriver::instant().run(&scenario);
        let san = outcome.san.expect("san backend reports block footprint");
        let record = json_record(&outcome);
        assert!(record.contains("\"san_blocks_mapped\":"), "{record}");
        let parsed = parse_baseline(&format!("[\n  {record}\n]\n")).unwrap();
        assert_eq!(parsed[0].san_block_accesses, Some(san.block_accesses));
        assert_eq!(parsed[0].san_blocks_touched, Some(san.blocks_touched));

        // And a sim outcome of the same scenario writes none of them.
        let sim_record = json_record(&sample_outcome());
        assert!(!sim_record.contains("san_"), "{sim_record}");
        let sim_parsed = parse_baseline(&format!("[\n  {sim_record}\n]\n")).unwrap();
        assert_eq!(sim_parsed[0].san_block_accesses, None);
    }

    #[test]
    fn backend_parsing_and_admission() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Sim));
        assert_eq!(Backend::parse("threads"), Some(Backend::Threads));
        assert_eq!(Backend::parse("san"), Some(Backend::San));
        assert_eq!(Backend::parse("coop"), Some(Backend::Coop));
        assert_eq!(Backend::parse("tokio"), None);

        let small = omega_scenario::registry::fault_free();
        let big = omega_scenario::registry::n_scaling(&[32]).pop().unwrap();
        let staller = omega_scenario::registry::no_awb_staller();
        for backend in [Backend::Threads, Backend::San] {
            assert!(backend.admits(&small, 1));
            assert!(
                !backend.admits(&big, 1),
                "n > 16 stays off per-node-thread backends"
            );
            assert!(
                !backend.admits(&big, 16),
                "the pool size only moves the coop column"
            );
            assert!(
                !backend.admits(&staller, 1),
                "no literal adversary on threads"
            );
        }
        assert!(Backend::Sim.admits(&big, 1) && Backend::Sim.admits(&staller, 1));

        // The cooperative backend is the whole point of the scaling
        // probes on a wall clock: it admits everything up to the
        // worker-dependent cap coop_max_n(workers).
        assert!(Backend::Coop.admits(&small, 1));
        assert!(Backend::Coop.admits(&big, 1), "coop runs n = 32 for real");
        let n64 = omega_scenario::registry::n_scaling(&[64]).pop().unwrap();
        let n128 = omega_scenario::registry::n_scaling(&[128]).pop().unwrap();
        let n256 = omega_scenario::registry::n_scaling(&[256]).pop().unwrap();
        assert!(Backend::Coop.admits(&n64, 1) && Backend::Coop.admits(&n128, 1));
        assert!(
            !Backend::Coop.admits(&n256, 1),
            "n = 256 needs a sharded pool: one worker cannot retire its load inside a 100 µs-tick horizon"
        );
        assert!(
            Backend::Coop.admits(&n256, 4),
            "four sharded workers admit n = 256"
        );
        let refusal = refusal_rule(Backend::Coop, &n256, 1);
        assert!(
            refusal.contains("1 worker(s)") && refusal.contains("n <= 128"),
            "the skip line states the worker-dependent cap: {refusal}"
        );
        assert!(
            refusal.contains("--workers 4"),
            "…and the pool that would lift it: {refusal}"
        );
        let n512 = omega_scenario::registry::n_scaling(&[512]).pop().unwrap();
        let n1024 = omega_scenario::registry::n_scaling(&[1024]).pop().unwrap();
        assert!(!Backend::Coop.admits(&n512, 4) && Backend::Coop.admits(&n512, 8));
        assert!(!Backend::Coop.admits(&n1024, 8) && Backend::Coop.admits(&n1024, 16));
        // Past SIM_MAX_N the coop pool is the only backend: the sim's
        // literal realization is memory-cubic in n and refuses loudly.
        assert!(Backend::Sim.admits(&n256, 1));
        assert!(!Backend::Sim.admits(&n512, 1) && !Backend::Sim.admits(&n1024, 16));
        let sim_refusal = refusal_rule(Backend::Sim, &n512, 1);
        assert!(
            sim_refusal.contains("n <= 256") && sim_refusal.contains("coop"),
            "the sim skip line names its cap and the backend that scales: {sim_refusal}"
        );
        assert!(
            !Backend::Coop.admits(&staller, 16),
            "coop is still a wall clock at any pool size"
        );
        let contended = omega_scenario::registry::contention_sweep(&[(32, 4)])
            .pop()
            .unwrap();
        assert!(
            Backend::Coop.admits(&contended, 1) && !Backend::Threads.admits(&contended, 1),
            "the contention sweep's large members are coop-only among wall clocks"
        );
    }

    #[test]
    fn chaos_admission_matrix_matches_list_output() {
        // The `--list` column for each chaos registry scenario is
        // `eligible_drivers().names()`; the suite dispatch reads the same
        // table through `Backend::admits`. Pin both views per clause.
        let by_name = |name: &str| {
            omega_scenario::registry::all()
                .into_iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("registry scenario {name} missing"))
        };

        // Partitions, crash waves and heals: realizable on every backend.
        let partition = by_name("chaos/partition-heal");
        assert_eq!(
            partition.eligible_drivers().names(),
            ["sim", "threads", "san", "coop"]
        );
        for backend in [Backend::Sim, Backend::Threads, Backend::San, Backend::Coop] {
            assert!(backend.admits(&partition, 1));
        }

        // Latency storms: only media with a stretchable clock — the
        // simulator, and the SAN's simulated block device.
        let storm = by_name("chaos/latency-storm");
        assert_eq!(storm.eligible_drivers().names(), ["sim", "san"]);
        assert!(Backend::San.admits(&storm, 1));
        for backend in [Backend::Threads, Backend::Coop] {
            assert!(!backend.admits(&storm, 1));
            assert!(
                refusal_rule(backend, &storm, 1).contains("storm"),
                "the refusal must name the clause"
            );
        }

        // Recovery waves: sim-only.
        let wave = by_name("chaos/wave-recover");
        assert_eq!(wave.eligible_drivers().names(), ["sim"]);
        for backend in [Backend::Threads, Backend::San, Backend::Coop] {
            assert!(!backend.admits(&wave, 1));
            assert!(
                refusal_rule(backend, &wave, 1).contains("recovery"),
                "the refusal must name the clause"
            );
        }
    }

    #[test]
    fn chaos_records_round_trip_through_the_baseline_parser() {
        // A campaign outcome writes the per-phase chaos counters; the
        // baseline parser (which gates none of them yet) must keep parsing
        // the record's gated fields around them.
        let scenario = omega_scenario::registry::all()
            .into_iter()
            .find(|s| s.name == "chaos/partition-heal")
            .unwrap();
        let outcome = SimDriver.run(&scenario);
        let record = json_record(&outcome);
        assert!(record.contains("\"partitions\":1"), "{record}");
        assert!(record.contains("\"partition_ticks\":"), "{record}");
        assert!(record.contains("\"heal_to_stable_ticks\":"), "{record}");
        let parsed = parse_baseline(&format!("[\n  {record}\n]\n")).unwrap();
        assert_eq!(parsed[0].scenario, "chaos/partition-heal");
        assert_eq!(parsed[0].total_writes, outcome.total_writes());
        assert_eq!(parsed[0].stabilization_ticks, outcome.stabilization_ticks);
    }

    #[test]
    fn witness_records_round_trip_and_the_gate_holds_them_exact() {
        // A non-electing hostile record carries its witness; the baseline
        // parser reads the counters back, and the gate (a) rejects any
        // false-stable ticks outright and (b) pins demotions / max streak
        // to the committed values — sim replay is exact, so drift means
        // the hostile environment changed.
        let scenario = omega_scenario::registry::all()
            .into_iter()
            .find(|s| s.name == "hostile/flap")
            .expect("hostile suite member");
        let outcome = SimDriver.run(&scenario);
        let w = *outcome.witness.as_ref().expect("non-electing runs witness");
        assert_eq!(w.false_stable_ticks, 0, "the committed record is clean");
        let record = json_record(&outcome);
        assert!(
            record.contains("\"witness_false_stable_ticks\":0"),
            "{record}"
        );
        let parsed = parse_baseline(&format!("[\n  {record}\n]\n")).unwrap();
        assert_eq!(parsed[0].witness_demotions, Some(w.demotions));
        assert_eq!(
            parsed[0].witness_max_stable_streak_ticks,
            Some(w.max_stable_streak_ticks)
        );
        assert_eq!(parsed[0].witness_false_stable_ticks, Some(0));

        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let outcomes = vec![outcome];
        assert!(
            check_against_baseline(&parsed, &outcomes, None, policy).is_empty(),
            "an unchanged run matches its own record"
        );
        let mut drifted = parsed.clone();
        drifted[0].witness_demotions = Some(w.demotions + 1);
        let violations = check_against_baseline(&drifted, &outcomes, None, policy);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("witness drifted"), "{violations:?}");

        // A witness holding a reign fails even against its own record.
        let mut reigning = outcomes;
        reigning[0].witness.as_mut().unwrap().false_stable_ticks = 10;
        let mut base = parsed;
        base[0].witness_false_stable_ticks = Some(10);
        let violations = check_against_baseline(&base, &reigning, None, policy);
        assert!(
            violations.iter().any(|v| v.contains("stable reign")),
            "{violations:?}"
        );
    }

    #[test]
    fn coop_records_round_trip_through_the_baseline_parser() {
        let scenario = omega_scenario::Scenario::fault_free(omega_core::OmegaVariant::Alg1, 2)
            .named("coop-sample")
            .horizon(60_000);
        let outcome = omega_scenario::CoopDriver::default().run(&scenario);
        assert_eq!(outcome.backend, "coop");
        assert_eq!(outcome.workers, Some(1), "coop outcomes report the pool");
        let record = json_record(&outcome);
        assert!(
            record.contains("\"workers\":1,"),
            "every coop record carries the workers field: {record}"
        );
        let parsed = parse_baseline(&format!("[\n  {record}\n]\n")).unwrap();
        assert_eq!(parsed[0].backend.as_deref(), Some("coop"));
        assert_eq!(parsed[0].scenario, "coop-sample");
        assert_eq!(parsed[0].total_writes, outcome.total_writes());
        assert!(parsed[0].elapsed_ms.is_some(), "coop records carry timing");
        assert_eq!(parsed[0].san_block_accesses, None, "no disk on coop");

        // Sim records never grow a workers field — the committed sim
        // baseline must stay byte-identical across this refactor.
        let sim_record = json_record(&sample_outcome());
        assert!(!sim_record.contains("\"workers\""), "{sim_record}");
    }

    #[test]
    fn worker_sweep_names_encode_their_pool_size() {
        // The suite loop recovers each sweep member's pool from its name;
        // pin the convention the committed coop baseline is keyed by.
        for w in WORKER_SWEEP {
            let name = format!("coop/workers={w}");
            let parsed: Option<usize> = name
                .strip_prefix("coop/workers=")
                .and_then(|v| v.parse().ok());
            assert_eq!(parsed, Some(w));
        }
        assert!(
            WORKER_SWEEP.windows(2).all(|p| p[0] < p[1]),
            "sweep records stay in ascending pool order"
        );
    }

    #[test]
    fn strict_timing_promotes_warnings_to_violations() {
        let mut outcome = sample_outcome();
        outcome.elapsed_ms = 300.0; // 3× the baseline: far past ±50%
        let base = BaselineRecord {
            scenario: outcome.scenario.clone(),
            backend: Some(outcome.backend.to_string()),
            stabilization_ticks: outcome.stabilization_ticks,
            total_writes: outcome.total_writes(),
            total_reads: outcome.total_reads(),
            elapsed_ms: Some(100.0),
            san_block_accesses: None,
            san_blocks_touched: None,
            witness_demotions: None,
            witness_max_stable_streak_ticks: None,
            witness_false_stable_ticks: None,
        };
        let outcomes = vec![outcome];
        let lenient = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        assert!(
            check_against_baseline(std::slice::from_ref(&base), &outcomes, None, lenient)
                .is_empty(),
            "without --strict-timing a timing delta is a warning, not a failure"
        );
        let strict = CheckPolicy {
            gate_model: true,
            strict_timing: true,
        };
        let violations = check_against_baseline(&[base], &outcomes, None, strict);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("timing (strict)"), "{violations:?}");
    }

    #[test]
    fn wall_clock_checks_gate_timing_not_model_counters() {
        let mut outcome = sample_outcome();
        outcome.elapsed_ms = 100.0;
        // A write-total regression that would fail the sim gate…
        let base = BaselineRecord {
            scenario: outcome.scenario.clone(),
            backend: None,
            stabilization_ticks: Some(1),
            total_writes: 1,
            total_reads: 1,
            elapsed_ms: Some(100.0),
            san_block_accesses: None,
            san_blocks_touched: None,
            witness_demotions: None,
            witness_max_stable_streak_ticks: None,
            witness_false_stable_ticks: None,
        };
        let outcomes = vec![outcome];
        let sim_policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        assert!(
            !check_against_baseline(std::slice::from_ref(&base), &outcomes, None, sim_policy)
                .is_empty(),
            "the sim gate must catch the counter regression"
        );
        // …is reported but not gated on a wall-clock backend, where the
        // counters depend on the host's scheduling.
        let wall_policy = CheckPolicy {
            gate_model: false,
            strict_timing: true,
        };
        assert!(
            check_against_baseline(&[base], &outcomes, None, wall_policy).is_empty(),
            "wall-clock checks compare timing only"
        );
    }

    #[test]
    fn backend_mismatch_is_a_gate_violation() {
        let outcome = sample_outcome(); // backend "sim"
        let base = BaselineRecord {
            scenario: outcome.scenario.clone(),
            backend: Some("coop".into()),
            stabilization_ticks: outcome.stabilization_ticks,
            total_writes: outcome.total_writes(),
            total_reads: outcome.total_reads(),
            elapsed_ms: None,
            san_block_accesses: None,
            san_blocks_touched: None,
            witness_demotions: None,
            witness_max_stable_streak_ticks: None,
            witness_false_stable_ticks: None,
        };
        let policy = CheckPolicy {
            gate_model: true,
            strict_timing: false,
        };
        let violations = check_against_baseline(&[base], &[outcome], None, policy);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("recorded by the coop backend"));
    }

    #[test]
    fn malformed_record_is_a_hard_error_not_a_silent_drop() {
        // A record the parser cannot read must fail the whole check run:
        // dropping it would reclassify its scenario as "new" and exempt
        // it from the gate.
        let broken = "[\n  {\"scenario\":\"a\",\"total_writes\":oops}\n]\n";
        let err = parse_baseline(broken).unwrap_err();
        assert!(err.contains("unparseable"), "{err}");
    }

    #[test]
    fn growth_is_zero_for_improvements() {
        assert_eq!(growth(100, 80), 0.0);
        assert_eq!(growth(100, 100), 0.0);
        assert!((growth(100, 130) - 0.3).abs() < 1e-9);
        assert_eq!(growth(0, 50), 0.0, "no trend from a zero baseline");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let name = "weird\"name\\with";
        let encoded = format!("{{\"scenario\":{}}}", json_str(name));
        assert_eq!(string_field(&encoded, "scenario").unwrap(), name);
    }

    #[test]
    fn partial_or_gate_runs_never_touch_the_default_baseline() {
        // Full record run: writes.
        assert!(should_write_artifact(false, false, false));
        // `--only` subset without an explicit destination: must NOT
        // overwrite the committed 15-record baseline with a partial one.
        assert!(!should_write_artifact(false, true, false));
        // Check runs only publish when asked.
        assert!(!should_write_artifact(true, false, false));
        assert!(should_write_artifact(true, false, true));
        // Explicit $BENCH_OUT always wins.
        assert!(should_write_artifact(false, true, true));
        assert!(should_write_artifact(true, true, true));
    }

    #[test]
    fn only_filter_is_substring_match() {
        assert!(admits(None, "n-scaling-256"));
        assert!(admits(Some("n-scaling"), "n-scaling-256"));
        assert!(admits(Some("256"), "n-scaling-256"));
        assert!(!admits(Some("n-scaling-2560"), "n-scaling-256"));
        assert!(!admits(Some("fault"), "n-scaling-256"));
    }

    #[test]
    fn timing_delta_needs_both_sides() {
        let base = |elapsed_ms| BaselineRecord {
            scenario: "a".into(),
            backend: None,
            stabilization_ticks: None,
            total_writes: 0,
            total_reads: 0,
            elapsed_ms,
            san_block_accesses: None,
            san_blocks_touched: None,
            witness_demotions: None,
            witness_max_stable_streak_ticks: None,
            witness_false_stable_ticks: None,
        };
        let mut outcome = sample_outcome();
        outcome.elapsed_ms = 150.0;
        assert_eq!(timing_delta(&base(None), &outcome), None);
        assert_eq!(timing_delta(&base(Some(0.0)), &outcome), None);
        let delta = timing_delta(&base(Some(100.0)), &outcome).unwrap();
        assert!((delta - 0.5).abs() < 1e-9, "{delta}");
        outcome.elapsed_ms = 0.0;
        assert_eq!(timing_delta(&base(Some(100.0)), &outcome), None);
    }

    #[test]
    fn json_record_carries_timing_fields() {
        let mut outcome = sample_outcome();
        outcome.elapsed_ms = 12.345;
        outcome.events_per_sec = 987_654.3;
        let record = json_record(&outcome);
        assert!(record.contains("\"elapsed_ms\":12.35"), "{record}");
        assert!(record.contains("\"events_per_sec\":987654"), "{record}");
        // And the record round-trips through the baseline parser.
        let parsed = parse_baseline(&format!("[\n  {record}\n]\n")).unwrap();
        assert_eq!(parsed[0].elapsed_ms, Some(12.35));
    }

    /// A minimal real outcome for JSON/timing unit tests (tiny horizon so
    /// the suite's own tests stay fast).
    fn sample_outcome() -> Outcome {
        let scenario = omega_scenario::Scenario::fault_free(omega_core::OmegaVariant::Alg1, 2)
            .named("sample")
            .horizon(500);
        SimDriver.run(&scenario)
    }
}
