//! Scenario-suite benchmark: every registry scenario on the simulator,
//! with a machine-readable JSON artifact for perf trajectories.
//!
//! Two modes:
//!
//! * **Record** (default) — prints the human table and writes
//!   `BENCH_scenarios.json` (same directory, or `$BENCH_OUT` if set) with
//!   per-scenario stabilization ticks, read/write totals, scan savings and
//!   footprint — the numbers a CI run can diff against history.
//! * **Check** (`--check <baseline.json>`) — runs the same suite, diffs
//!   every outcome against the committed baseline, and exits non-zero on a
//!   stabilization-tick regression above 25% or a total-write regression
//!   above 15%. Scenarios present only on one side are reported but never
//!   fail the gate (they have no trend yet). This is the CI regression
//!   gate named in ROADMAP's "Outcome diffing" item.

use std::fmt::Write as _;

use omega_bench::table::Table;
use omega_scenario::{registry, Driver, Outcome, SimDriver};

/// Allowed relative growth of `stabilization_ticks` before the gate fails.
const MAX_STABILIZATION_REGRESSION: f64 = 0.25;
/// Allowed relative growth of `total_writes` before the gate fails.
const MAX_WRITE_REGRESSION: f64 = 0.15;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_record(outcome: &Outcome) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{{\"scenario\":{},\"backend\":{},\"variant\":{},\"n\":{},\"stabilized\":{},",
        json_str(&outcome.scenario),
        json_str(outcome.backend),
        json_str(outcome.variant.name()),
        outcome.n,
        outcome.stabilized,
    );
    let _ = match outcome.stabilization_ticks {
        Some(t) => write!(o, "\"stabilization_ticks\":{t},"),
        None => write!(o, "\"stabilization_ticks\":null,"),
    };
    let _ = write!(
        o,
        "\"horizon_ticks\":{},\"crashed\":{},\"total_writes\":{},\"total_reads\":{},\"reads_skipped\":{},\"shard_passes\":{},\"hwm_bits\":{},\"register_count\":{},",
        outcome.horizon_ticks,
        outcome.crashed.len(),
        outcome.total_writes(),
        outcome.total_reads(),
        outcome.reads_skipped,
        outcome.shard_passes,
        outcome.hwm_bits,
        outcome.register_count,
    );
    let _ = match &outcome.tail {
        Some(tail) => write!(
            o,
            "\"tail_writers\":{},\"tail_writes_per_1k\":{:.2}}}",
            tail.writers.len(),
            tail.writes_per_1k
        ),
        None => write!(o, "\"tail_writers\":null,\"tail_writes_per_1k\":null}}"),
    };
    o
}

/// The baseline fields the regression gate compares against.
#[derive(Debug, Clone, PartialEq)]
struct BaselineRecord {
    scenario: String,
    stabilization_ticks: Option<u64>,
    total_writes: u64,
    total_reads: u64,
}

/// Extracts the value of `"key":` from one flat JSON object, as a raw
/// token (up to the next `,` or `}` — sufficient for the numeric, null and
/// boolean fields this tool writes; string fields are not parsed here).
fn raw_field<'a>(object: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = &object[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn string_field(object: &str, key: &str) -> Option<String> {
    let raw = raw_field(object, key)?;
    let raw = raw.strip_prefix('"')?.strip_suffix('"')?;
    // The only escapes this tool emits are \" and \\ (names are ASCII).
    Some(raw.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// Parses the baseline JSON written by this tool: an array of flat
/// objects, one per line. Tolerates reformatting as long as each record
/// stays on its own line.
///
/// A line that looks like a record but does not parse is a **hard
/// error**: silently dropping it would let the gate treat its scenario
/// as "new — no trend yet" and wave a real regression through.
fn parse_baseline(json: &str) -> Result<Vec<BaselineRecord>, String> {
    json.lines()
        .map(str::trim)
        .filter(|line| line.starts_with('{'))
        .map(|line| {
            let parsed = (|| {
                Some(BaselineRecord {
                    scenario: string_field(line, "scenario")?,
                    stabilization_ticks: match raw_field(line, "stabilization_ticks")? {
                        "null" => None,
                        raw => Some(raw.parse().ok()?),
                    },
                    total_writes: raw_field(line, "total_writes")?.parse().ok()?,
                    total_reads: raw_field(line, "total_reads")?.parse().ok()?,
                })
            })();
            parsed.ok_or_else(|| format!("unparseable baseline record: {line}"))
        })
        .collect()
}

/// Relative growth of `current` over `baseline` (0.0 when not a growth).
fn growth(baseline: u64, current: u64) -> f64 {
    if current <= baseline || baseline == 0 {
        return 0.0;
    }
    (current - baseline) as f64 / baseline as f64
}

/// Diffs current outcomes against the baseline; returns human-readable
/// gate violations (empty = gate passes).
fn check_against_baseline(baseline: &[BaselineRecord], outcomes: &[Outcome]) -> Vec<String> {
    let mut violations = Vec::new();
    for outcome in outcomes {
        let Some(base) = baseline.iter().find(|b| b.scenario == outcome.scenario) else {
            println!("  new scenario (no trend yet): {}", outcome.scenario);
            continue;
        };
        println!(
            "  {}: stab {:?} -> {:?}, writes {} -> {}, reads {} -> {}",
            outcome.scenario,
            base.stabilization_ticks,
            outcome.stabilization_ticks,
            base.total_writes,
            outcome.total_writes(),
            base.total_reads,
            outcome.total_reads(),
        );
        match (base.stabilization_ticks, outcome.stabilization_ticks) {
            (Some(before), Some(now)) => {
                let g = growth(before, now);
                if g > MAX_STABILIZATION_REGRESSION {
                    violations.push(format!(
                        "{}: stabilization regressed {before} -> {now} ticks (+{:.0}%, limit {:.0}%)",
                        outcome.scenario,
                        g * 100.0,
                        MAX_STABILIZATION_REGRESSION * 100.0
                    ));
                }
            }
            (Some(before), None) => violations.push(format!(
                "{}: stabilized at tick {before} in the baseline, did not stabilize now",
                outcome.scenario
            )),
            // Baseline never stabilized: stabilizing now is an improvement.
            (None, _) => {}
        }
        let g = growth(base.total_writes, outcome.total_writes());
        if g > MAX_WRITE_REGRESSION {
            violations.push(format!(
                "{}: total writes regressed {} -> {} (+{:.0}%, limit {:.0}%)",
                outcome.scenario,
                base.total_writes,
                outcome.total_writes(),
                g * 100.0,
                MAX_WRITE_REGRESSION * 100.0
            ));
        }
    }
    for base in baseline {
        if !outcomes.iter().any(|o| o.scenario == base.scenario) {
            println!("  baseline scenario no longer in suite: {}", base.scenario);
        }
    }
    violations
}

fn run_suite() -> (Table, Vec<Outcome>) {
    let mut table = Table::new(&[
        "scenario",
        "variant",
        "n",
        "expects",
        "stabilized",
        "stab tick",
        "writes",
        "reads",
        "skipped",
        "hwm bits",
    ]);
    let mut outcomes = Vec::new();
    for scenario in registry::all() {
        let outcome = SimDriver.run(&scenario);
        if scenario.expect_stabilization {
            outcome.assert_election();
        } else {
            // A final-sample coincidence may masquerade as agreement; the
            // necessity claim is that no *durable* stabilization exists.
            assert!(
                !outcome.stabilized_for(0.34),
                "{}: AWB-violating scenario stabilized anyway",
                scenario.name
            );
        }
        table.row(&[
            scenario.name.clone(),
            outcome.variant.name().to_string(),
            outcome.n.to_string(),
            scenario.expect_stabilization.to_string(),
            outcome.stabilized.to_string(),
            outcome
                .stabilization_ticks
                .map_or("-".into(), |t| t.to_string()),
            outcome.total_writes().to_string(),
            outcome.total_reads().to_string(),
            outcome.reads_skipped.to_string(),
            outcome.hwm_bits.to_string(),
        ]);
        outcomes.push(outcome);
    }
    (table, outcomes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: scenarios [--check BASELINE.json]");
            std::process::exit(2);
        }
    };

    let (table, outcomes) = run_suite();
    println!(
        "== scenario suite ({} scenarios, sim backend) ==",
        outcomes.len()
    );
    println!("{table}");

    // In record mode the artifact is always written; in check mode only
    // when `$BENCH_OUT` names a destination (so a CI gate run can publish
    // the current outcomes without a second suite run).
    let out_path = std::env::var("BENCH_OUT").ok();
    if check_path.is_none() || out_path.is_some() {
        let records: Vec<String> = outcomes.iter().map(json_record).collect();
        let json = format!("[\n  {}\n]\n", records.join(",\n  "));
        let path = out_path.unwrap_or_else(|| "BENCH_scenarios.json".into());
        std::fs::write(&path, &json).expect("write scenario outcomes JSON");
        println!("wrote {} records to {path}", records.len());
    }

    if let Some(path) = check_path {
        let json =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline = parse_baseline(&json).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
        assert!(!baseline.is_empty(), "baseline {path} holds no records");
        println!(
            "== regression gate vs {path} ({} records) ==",
            baseline.len()
        );
        let violations = check_against_baseline(&baseline, &outcomes);
        if violations.is_empty() {
            println!(
                "gate PASSED: no stabilization regression > {:.0}%, no write regression > {:.0}%",
                MAX_STABILIZATION_REGRESSION * 100.0,
                MAX_WRITE_REGRESSION * 100.0
            );
            return;
        }
        eprintln!("gate FAILED:");
        for violation in &violations {
            eprintln!("  {violation}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"scenario":"a","backend":"sim","stabilization_ticks":1000,"total_writes":500,"total_reads":9000},
  {"scenario":"no-stab","backend":"sim","stabilization_ticks":null,"total_writes":100,"total_reads":50}
]
"#;

    #[test]
    fn parses_own_format() {
        let records = parse_baseline(SAMPLE).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].scenario, "a");
        assert_eq!(records[0].stabilization_ticks, Some(1000));
        assert_eq!(records[0].total_writes, 500);
        assert_eq!(records[1].stabilization_ticks, None);
    }

    #[test]
    fn malformed_record_is_a_hard_error_not_a_silent_drop() {
        // A record the parser cannot read must fail the whole check run:
        // dropping it would reclassify its scenario as "new" and exempt
        // it from the gate.
        let broken = "[\n  {\"scenario\":\"a\",\"total_writes\":oops}\n]\n";
        let err = parse_baseline(broken).unwrap_err();
        assert!(err.contains("unparseable"), "{err}");
    }

    #[test]
    fn growth_is_zero_for_improvements() {
        assert_eq!(growth(100, 80), 0.0);
        assert_eq!(growth(100, 100), 0.0);
        assert!((growth(100, 130) - 0.3).abs() < 1e-9);
        assert_eq!(growth(0, 50), 0.0, "no trend from a zero baseline");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let name = "weird\"name\\with";
        let encoded = format!("{{\"scenario\":{}}}", json_str(name));
        assert_eq!(string_field(&encoded, "scenario").unwrap(), name);
    }
}
