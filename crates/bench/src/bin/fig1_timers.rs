//! Experiment E1 — Figure 1: asymptotically well-behaved timers.
//!
//! The paper's Figure 1 shows a timer curve `T_R(τ, x)` that oscillates but
//! eventually dominates a monotone unbounded `f_R(τ, x)`. This binary
//! sweeps a `(τ, x)` grid for every timer model in the suite, reports the
//! minimum margin `T − f` past the cut-off `(τ_f, x_f)`, and verifies the
//! (f1)/(f2) properties of the candidate `f_R`. AWB₂-violating models must
//! fail the check; all others must pass.

use omega_bench::table::Table;
use omega_sim::timers::{
    check_domination, check_f_properties, AffineTimer, ChaoticThen, ExactTimer, JitteredTimer,
    StuckLowTimer, TimerModel,
};
use omega_sim::SimTime;

fn main() {
    // Candidate f_R(τ, x) = x / 2 with (τ_f, x_f) = (5000, 1): monotone and
    // unbounded, per (f1)/(f2).
    let f = |_tau: u64, x: u64| x / 2;
    assert!(
        check_f_properties(f, &[0, 10, 1_000, 100_000], &[1, 2, 16, 1 << 20], 1 << 40),
        "candidate f_R must satisfy (f1) and (f2)"
    );
    println!("candidate f_R(tau, x) = x/2   cut-off (tau_f, x_f) = (5000, 1)");
    println!("grid: tau in {{5k, 10k, 50k, 100k}}  x in {{1, 4, 16, 256, 4096, 65536}}");
    println!();

    let taus = [5_000u64, 10_000, 50_000, 100_000];
    let xs = [1u64, 4, 16, 256, 4_096, 65_536];

    let mut models: Vec<(&str, Box<dyn TimerModel>, bool)> = vec![
        ("exact: T = x", Box::new(ExactTimer), true),
        ("affine: T = 2x + 3", Box::new(AffineTimer::new(2, 3)), true),
        (
            "jittered: T = x + U[0,9]",
            Box::new(JitteredTimer::new(7, 9)),
            true,
        ),
        (
            "chaotic<5k then exact",
            Box::new(ChaoticThen::new(
                SimTime::from_ticks(5_000),
                50,
                3,
                ExactTimer,
            )),
            true,
        ),
        (
            "chaotic<5k then jittered",
            Box::new(ChaoticThen::new(
                SimTime::from_ticks(5_000),
                100,
                9,
                JitteredTimer::new(5, 17),
            )),
            true,
        ),
        (
            "VIOLATOR stuck-low: T = min(x, 12)",
            Box::new(StuckLowTimer::new(12)),
            false,
        ),
    ];

    let mut table = Table::new(&[
        "timer model",
        "points",
        "violations",
        "min(T - f)",
        "AWB2 holds",
        "expected",
    ]);
    for (name, model, expected) in models.iter_mut() {
        let report = check_domination(model.as_mut(), f, &taus, &xs);
        // Recompute the margin for display (fresh sweep; jitter models are
        // reseeded deterministically inside check_domination's caller, so
        // use the violation list for the margin instead).
        let min_margin: i128 = if report.holds() {
            let mut margin = i128::MAX;
            for &tau in &taus {
                for &x in &xs {
                    let t = model.duration(SimTime::from_ticks(tau), x);
                    margin = margin.min(t as i128 - f(tau, x) as i128);
                }
            }
            margin
        } else {
            report
                .violations
                .iter()
                .map(|&(_, _, t, fv)| t as i128 - fv as i128)
                .min()
                .unwrap_or(0)
        };
        let holds = report.holds();
        table.row(&[
            (*name).to_string(),
            report.checked.to_string(),
            report.violations.len().to_string(),
            min_margin.to_string(),
            holds.to_string(),
            expected.to_string(),
        ]);
        assert_eq!(
            holds, *expected,
            "{name}: domination outcome diverged from the paper's classification"
        );
    }
    println!("{table}");
    println!("shape check: every AWB2 model dominates f_R past the cut-off; the");
    println!("stuck-low violator fails (f3) — exactly Figure 1's geometry.");
}
