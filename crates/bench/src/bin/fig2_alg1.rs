//! Experiments E2–E4 + E13 — Figure 2 / Theorems 1–4: Algorithm 1.
//!
//! Sections:
//!
//! 1. **Eventual leadership (Theorem 1)** — stabilization across system
//!    sizes and adversaries, including leader-crash failover.
//! 2. **Write-optimality (Theorem 3 / Lemma 5 / Theorem 4)** — after
//!    stabilization exactly one process writes, into exactly one register,
//!    while every correct process keeps reading (Lemma 6).
//! 3. **Boundedness (Theorem 2)** — the only register still growing late in
//!    the run is the leader's `PROGRESS` entry.
//! 4. **AWB necessity (E13)** — dropping AWB lets a leader-stalling
//!    adversary prevent stabilization forever.

use omega_bench::table::Table;
use omega_bench::{run_election, AwbParams};
use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_scenario::{Driver, Scenario, SimDriver};

fn main() {
    let horizon = 60_000;

    println!("== E2: eventual leadership (Theorem 1), Algorithm 1, AWB runs ==");
    let mut t = Table::new(&[
        "n",
        "crash leader@",
        "stabilized",
        "leader",
        "stable from",
        "registers",
    ]);
    for n in [2usize, 3, 5, 8, 16, 32] {
        for crash in [None, Some(horizon / 3)] {
            let params = AwbParams {
                timely: ProcessId::new(n - 1),
                ..AwbParams::default()
            };
            let s = run_election(OmegaVariant::Alg1, n, horizon, params, crash);
            t.row(&[
                n.to_string(),
                crash.map_or("-".into(), |c| c.to_string()),
                s.stabilized.to_string(),
                s.leader.map_or("-".into(), |l| l.to_string()),
                s.stable_from.map_or("-".into(), |v| v.to_string()),
                s.register_count.to_string(),
            ]);
            assert!(
                s.stabilized,
                "n={n} crash={crash:?} must stabilize under AWB"
            );
        }
    }
    println!("{t}");

    println!("== E4: write-optimality tail (Theorems 3/4, Lemmas 5/6) ==");
    let mut t = Table::new(&[
        "n",
        "tail writers",
        "tail regs written",
        "tail writes/1k ticks",
        "tail readers",
    ]);
    for n in [3usize, 5, 8, 16] {
        let s = run_election(OmegaVariant::Alg1, n, horizon, AwbParams::default(), None);
        t.row(&[
            n.to_string(),
            s.tail_writers.to_string(),
            s.tail_written_registers.to_string(),
            format!("{:.1}", s.tail_writes_per_1k),
            s.tail_readers.to_string(),
        ]);
        assert_eq!(
            s.tail_writers, 1,
            "only the leader writes after stabilization"
        );
        assert_eq!(s.tail_written_registers, 1, "and only one register");
        assert_eq!(s.tail_readers, n, "everyone keeps reading (Lemma 6)");
    }
    println!("{t}");

    println!("== E3: boundedness (Theorem 2) ==");
    let mut t = Table::new(&["n", "horizon", "hwm bits", "still growing in tail"]);
    for n in [3usize, 8] {
        for h in [20_000u64, 40_000, 80_000] {
            let s = run_election(OmegaVariant::Alg1, n, h, AwbParams::default(), None);
            t.row(&[
                n.to_string(),
                h.to_string(),
                s.hwm_bits.to_string(),
                if s.grown_in_tail.is_empty() {
                    "-".to_string()
                } else {
                    s.grown_in_tail.join(",")
                },
            ]);
            assert!(
                s.grown_in_tail.len() <= 1,
                "at most the leader's PROGRESS entry may grow"
            );
            for name in &s.grown_in_tail {
                assert!(
                    name.starts_with("PROGRESS["),
                    "unexpected unbounded register {name}"
                );
            }
        }
    }
    println!("{t}");
    println!("(the single growing register is PROGRESS[leader]; everything else plateaus)");
    println!();

    println!("== E13: AWB necessity — leader staller + stuck-low timers, no envelope ==");
    let mut t = Table::new(&["n", "stabilized >=1/3 of run", "leader changes (p0 view)"]);
    for n in [2usize, 3, 5] {
        let scenario = Scenario::fault_free(OmegaVariant::Alg1, n)
            .named(format!("no-awb-staller/n{n}"))
            .without_awb()
            .adversary(omega_scenario::AdversarySpec::LeaderStaller {
                base: 2,
                stall: 4_000,
            })
            .timers(omega_scenario::TimerSpec::StuckLow { cap: 8 })
            .horizon(120_000)
            .sample_every(100);
        let outcome = SimDriver.run(&scenario);
        let stable = outcome.stabilized_for(0.34);
        t.row(&[
            n.to_string(),
            stable.to_string(),
            outcome.estimate_changes[0].to_string(),
        ]);
        assert!(
            !stable,
            "without AWB the staller must keep demoting leaders"
        );
    }
    println!("{t}");
    println!("shape check: all Theorem 1-4 properties hold under AWB; none survive its removal.");
}
