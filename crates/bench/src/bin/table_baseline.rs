//! Experiment E14 — the assumption separation: AWB vs. eventual synchrony.
//!
//! The paper's related-work section claims its AWB assumption is strictly
//! weaker than the eventually-synchronous shared memory assumed by the
//! only prior shared-memory Ω (\[13\], Guerraoui & Raynal SEUS'06). This
//! experiment makes the separation executable:
//!
//! * Under an **eventually synchronous** schedule (all step delays
//!   bounded), both the baseline (`EsOmega`) and Algorithm 1 elect.
//! * Under a schedule that satisfies **AWB but not eventual synchrony** —
//!   one timely process plus a correct low-identity process whose stall
//!   lengths grow geometrically forever — Algorithm 1 still elects
//!   (the bursty process simply accumulates suspicions and loses), while
//!   the baseline's adaptive timeouts are beaten by every longer stall and
//!   its min-unsuspected-id rule yo-yos forever.

use std::sync::Arc;

use omega_bench::table::Table;
use omega_core::{boxed_actors, EsMemory, EsOmega, OmegaVariant};
use omega_registers::{MemorySpace, ProcessId};
use omega_scenario::Scenario;
use omega_sim::RunReport;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn run_baseline(n: usize, scenario: &Scenario, horizon: u64) -> RunReport {
    let space = MemorySpace::new(n);
    let mem = EsMemory::new(&space);
    let actors = boxed_actors(
        ProcessId::all(n)
            .map(|pid| EsOmega::new(Arc::clone(&mem), pid, 2, 4))
            .collect::<Vec<_>>(),
    );
    scenario
        .clone()
        .horizon(horizon)
        .sample_every(100)
        .sim_builder(actors)
        .run()
}

fn run_alg1(n: usize, scenario: &Scenario, horizon: u64) -> RunReport {
    let sys = OmegaVariant::Alg1.build(n);
    scenario
        .clone()
        .horizon(horizon)
        .sample_every(100)
        .sim_builder(sys.actors)
        .run()
}

fn describe(report: &RunReport) -> (String, String, usize) {
    let stab = report.stabilization();
    (
        report.stabilized_for(0.25).to_string(),
        stab.map_or("-".into(), |s| {
            format!("{}@{}", s.leader, s.stable_from.ticks())
        }),
        (0..report.steps_taken.len())
            .map(|i| report.timeline.changes_of(p(i)))
            .sum(),
    )
}

fn main() {
    let n = 3;
    let horizon = 200_000;
    println!("== E14: AWB vs eventual synchrony (baseline [13]-style vs Figure 2) ==");
    println!();

    let mut t = Table::new(&[
        "schedule",
        "algorithm",
        "stabilized",
        "leader@tick",
        "estimate flips",
    ]);

    // Schedule A: eventually synchronous (uniform random delays, bounded).
    // Bounded delays make AWB trivially true, so no envelope is needed.
    let es = Scenario::fault_free(OmegaVariant::Alg1, n)
        .named("eventually-synchronous")
        .without_awb()
        .adversary(omega_scenario::AdversarySpec::Random { min: 1, max: 6 })
        .seed(5);
    let baseline_es = run_baseline(n, &es, horizon);
    let alg1_es = run_alg1(n, &es, horizon);
    for (name, report) in [("baseline-es", &baseline_es), ("alg1-fig2", &alg1_es)] {
        let (stab, leader, flips) = describe(report);
        t.row(&[
            "eventually-synchronous".into(),
            name.to_string(),
            stab,
            leader,
            flips.to_string(),
        ]);
        assert!(
            report.stabilized_for(0.25),
            "{name} must elect under eventual synchrony"
        );
    }

    // Schedule B: AWB holds (p2 timely) but p0 — the smallest identity —
    // is correct yet *not* eventually synchronous: its stalls grow ×2
    // forever, beating every adaptive timeout.
    let awb_not_es = Scenario::fault_free(OmegaVariant::Alg1, n)
        .named("awb-but-not-es")
        .adversary(omega_scenario::AdversarySpec::GrowingBursts {
            victim: p(0),
            fast: 2,
            burst_len: 50,
            initial_stall: 64,
            factor: 2,
        })
        .awb(p(2), 1_000, 4);
    let baseline_awb = run_baseline(n, &awb_not_es, horizon);
    let alg1_awb = run_alg1(n, &awb_not_es, horizon);
    for (name, report) in [("baseline-es", &baseline_awb), ("alg1-fig2", &alg1_awb)] {
        let (stab, leader, flips) = describe(report);
        t.row(&[
            "AWB-but-not-ES".into(),
            name.to_string(),
            stab,
            leader,
            flips.to_string(),
        ]);
    }
    println!("{t}");

    assert!(
        alg1_awb.stabilized_for(0.25),
        "Algorithm 1 must tolerate the unbounded-burst process"
    );
    assert!(
        !baseline_awb.stabilized_for(0.25),
        "the ES baseline must keep flapping on growing bursts"
    );
    let baseline_flips: usize = (0..n).map(|i| baseline_awb.timeline.changes_of(p(i))).sum();
    let alg1_flips: usize = (0..n).map(|i| alg1_awb.timeline.changes_of(p(i))).sum();
    println!("flips under AWB-not-ES: baseline {baseline_flips} vs alg1 {alg1_flips}");
    println!();
    println!("shape check: both algorithms elect under eventual synchrony; only the");
    println!("paper's algorithm survives the strictly weaker AWB assumption — the");
    println!("related-work separation, executed.");
}
