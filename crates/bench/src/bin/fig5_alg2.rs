//! Experiments E9–E10 — Figure 5 / Theorems 6–8: Algorithm 2.
//!
//! Sections:
//!
//! 1. **Full boundedness (Theorem 6)** — total shared-memory footprint
//!    plateaus as the horizon doubles; no register grows late in the run.
//! 2. **Write pattern (Theorem 7 / Corollary 1)** — after stabilization,
//!    the write set is exactly `{HPROGRESS[ℓ][·] by ℓ} ∪ {LAST[ℓ][·] by
//!    followers}`, and *every* correct process writes forever.
//! 3. **Election (Theorem 1 analogue)** — Algorithm 2 still elects under
//!    the full adversary suite, including failover.

use omega_bench::table::Table;
use omega_bench::{run_election, AwbParams};
use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_scenario::Scenario;

fn main() {
    println!("== E9: boundedness of ALL registers (Theorem 6) ==");
    let mut t = Table::new(&["n", "horizon", "hwm bits", "grew in final quarter"]);
    for n in [3usize, 6] {
        let mut hwms = Vec::new();
        for h in [20_000u64, 40_000, 80_000, 160_000] {
            let s = run_election(OmegaVariant::Alg2, n, h, AwbParams::default(), None);
            t.row(&[
                n.to_string(),
                h.to_string(),
                s.hwm_bits.to_string(),
                if s.grown_in_tail.is_empty() {
                    "-".to_string()
                } else {
                    s.grown_in_tail.join(",")
                },
            ]);
            assert!(
                s.grown_in_tail.is_empty(),
                "n={n} h={h}: Theorem 6 — nothing may keep growing"
            );
            hwms.push(s.hwm_bits);
        }
        // Footprint plateau: doubling the horizon twice more does not move
        // the high-water mark (same seed → same chaos phase).
        assert_eq!(
            hwms[2], hwms[3],
            "n={n}: footprint must plateau as the horizon grows"
        );
    }
    println!("{t}");
    println!("(hwm bits stop moving once suspicions freeze: the whole memory is bounded)");
    println!();

    println!("== E10: post-stabilization write pattern (Theorem 7, Corollary 1) ==");
    let n = 4;
    let scenario = Scenario::fault_free(OmegaVariant::Alg2, n)
        .named("fig5-write-pattern")
        .seed(5)
        .horizon(60_000)
        .sample_every(150)
        .stats_checkpoints(16);
    let sys = OmegaVariant::Alg2.build(n);
    let space = sys.space.clone();
    let report = scenario.sim_builder(sys.actors).memory(space).run();
    let leader = report.elected_leader().expect("stabilizes");
    let tail = report.windowed.tail(0.25).expect("stats recorded");
    let mut t = Table::new(&["register", "writers", "writes in tail"]);
    let mut signal = 0u64;
    let mut acks = 0u64;
    for row in tail.stats.rows() {
        if row.total_writes() == 0 {
            continue;
        }
        let writers: Vec<String> = ProcessId::all(n)
            .filter(|p| row.writes[p.index()] > 0)
            .map(|p| p.to_string())
            .collect();
        t.row(&[
            row.name.to_string(),
            writers.join(","),
            row.total_writes().to_string(),
        ]);
        let is_signal = row
            .name
            .starts_with(&format!("HPROGRESS[{}][", leader.index()));
        let is_ack = row.name.starts_with(&format!("LAST[{}][", leader.index()));
        assert!(
            is_signal || is_ack,
            "unexpected tail write target {}",
            row.name
        );
        if is_signal {
            signal += row.total_writes();
        } else {
            acks += row.total_writes();
        }
    }
    println!("{t}");
    println!("leader = {leader}; signal writes = {signal}, ack writes = {acks}");
    for pid in ProcessId::all(n) {
        assert!(
            tail.stats.writes_of(pid) > 0,
            "{pid} must write forever (Corollary 1)"
        );
    }
    println!("every correct process wrote in the tail: Corollary 1 observed.");
    println!();

    println!("== Election across sizes (Theorem 1 for Algorithm 2) ==");
    let mut t = Table::new(&["n", "crash leader@", "stabilized", "leader", "stable from"]);
    for n in [2usize, 4, 8, 16] {
        for crash in [None, Some(20_000u64)] {
            let params = AwbParams {
                timely: ProcessId::new(n - 1),
                ..AwbParams::default()
            };
            let s = run_election(OmegaVariant::Alg2, n, 60_000, params, crash);
            t.row(&[
                n.to_string(),
                crash.map_or("-".into(), |c| c.to_string()),
                s.stabilized.to_string(),
                s.leader.map_or("-".into(), |l| l.to_string()),
                s.stable_from.map_or("-".into(), |v| v.to_string()),
            ]);
            assert!(s.stabilized);
        }
    }
    println!("{t}");
    println!("shape check: bounded everywhere, everyone writes, still elects — Figure 5.");
}
