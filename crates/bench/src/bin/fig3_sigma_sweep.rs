//! Experiment E5 — Figure 3 / Lemma 2 mechanics: the σ sweep.
//!
//! Figure 3 illustrates the sequence `S` of the leader's writes, spaced at
//! most `σ` apart after `τ₁`; Lemma 2 argues that once a follower's timeout
//! duration exceeds that spacing, it never misses a heartbeat again, so its
//! suspicion counters stop growing. This binary runs the registry's
//! `sigma-sweep/*` scenario family and reports, per σ: the final total
//! suspicion count of the leader, the last tick at which any suspicion was
//! raised, and whether the run stabilized — the shape being that suspicions
//! freeze quickly and earlier for smaller σ, while stabilization holds for
//! every finite σ.

use std::sync::Arc;

use omega_bench::table::Table;
use omega_core::{boxed_actors, Alg1Memory, Alg1Process};
use omega_registers::{MemorySpace, ProcessId};
use omega_scenario::registry;

fn main() {
    let sweep = registry::sigma_sweep(&[2, 4, 8, 16, 32]);
    let n = sweep[0].n;
    let horizon = sweep[0].horizon;
    let tau1 = sweep[0].awb.unwrap().tau1;
    println!("== E5: sigma sweep (n={n}, tau1={tau1}, horizon={horizon}) ==");
    println!("leader p0 writes every <= sigma ticks after tau1; followers step in [1,12]");
    println!();

    let mut table = Table::new(&[
        "sigma",
        "stabilized",
        "leader",
        "total suspicions of leader",
        "max timeout reached",
        "last suspicion tick",
    ]);

    for scenario in sweep {
        let sigma = scenario.awb.unwrap().sigma;
        // Custom actor construction so the suspicion matrix stays peekable;
        // the run's whole environment still comes from the scenario.
        let space = MemorySpace::new(n);
        let memory = Alg1Memory::new(&space);
        let actors = boxed_actors(
            ProcessId::all(n)
                .map(|pid| Alg1Process::new(Arc::clone(&memory), pid))
                .collect::<Vec<_>>(),
        );
        let report = scenario.sim_builder(actors).memory(space.clone()).run();

        let leader = report.elected_leader();
        let leader_pid = leader.unwrap_or(ProcessId::new(0));
        let total_susp = memory.peek_total_suspicions(leader_pid);
        // Max timeout value any process reached = max over own-row maxima.
        let max_timeout = ProcessId::all(n)
            .map(|j| {
                ProcessId::all(n)
                    .map(|k| memory.peek_suspicions(j, k))
                    .max()
                    .unwrap_or(0)
                    + 1
            })
            .max()
            .unwrap_or(1);
        // Last tick with suspicion growth: find the last checkpoint window
        // in which SUSPICIONS registers were written.
        let last_susp_tick = report
            .windowed
            .windows(32)
            .iter()
            .filter(|w| {
                w.stats
                    .written_registers()
                    .iter()
                    .any(|r| r.starts_with("SUSPICIONS"))
            })
            .map(|w| w.end.ticks())
            .max()
            .unwrap_or(0);

        table.row(&[
            sigma.to_string(),
            report.stabilized_for(0.2).to_string(),
            leader.map_or("-".into(), |l| l.to_string()),
            total_susp.to_string(),
            max_timeout.to_string(),
            last_susp_tick.to_string(),
        ]);
        assert!(
            report.stabilized_for(0.2),
            "sigma={sigma}: any finite sigma must still elect"
        );
        assert!(
            last_susp_tick < horizon,
            "sigma={sigma}: suspicions must stop growing (Lemma 2)"
        );
    }
    println!("{table}");
    println!("shape check: suspicion totals and timeouts settle at levels that grow");
    println!("with sigma, and always freeze before the horizon — Lemma 2's geometry.");
}
