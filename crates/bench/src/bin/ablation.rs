//! Ablation study: the design choices DESIGN.md calls out.
//!
//! Three knobs the paper leaves open (or fixes without discussion), each
//! swept on a common AWB workload:
//!
//! 1. **Initial candidate set** — Section 3.2 only requires
//!    `i ∈ candidates_i`. Starting from the full set vs. `{i}` trades
//!    startup churn for early self-rule.
//! 2. **Timeout slack** — line 27 uses `max SUSPICIONS + 1`. Larger slack
//!    makes followers more patient: fewer suspicions during chaos, slower
//!    failover after a real crash.
//! 3. **Identity of the AWB₁ timely process** — the lexicographic election
//!    rule favors small identities; a timely process with a large identity
//!    must out-wait every smaller rival's suspicion count.

use std::sync::Arc;

use omega_bench::table::Table;
use omega_core::{boxed_actors, Alg1Memory, Alg1Process, CandidateInit, OmegaVariant};
use omega_registers::{MemorySpace, ProcessId};
use omega_scenario::{AdversarySpec, Scenario};
use omega_sim::RunReport;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn run(
    n: usize,
    init: CandidateInit,
    slack: u64,
    timely: ProcessId,
    crash_leader_at: Option<u64>,
    seed: u64,
) -> (RunReport, Arc<Alg1Memory>) {
    let space = MemorySpace::new(n);
    let memory = Alg1Memory::new(&space);
    let actors = boxed_actors(
        ProcessId::all(n)
            .map(|pid| {
                Alg1Process::with_candidates(Arc::clone(&memory), pid, init.clone())
                    .with_timeout_slack(slack)
            })
            .collect::<Vec<_>>(),
    );
    let mut scenario = Scenario::fault_free(OmegaVariant::Alg1, n)
        .named("ablation")
        .adversary(AdversarySpec::Random { min: 1, max: 8 })
        .awb(timely, 1_000, 4)
        .seed(seed)
        .horizon(80_000)
        .sample_every(100);
    if let Some(t) = crash_leader_at {
        scenario = scenario.crash_leader_at(t);
    }
    let report = scenario.sim_builder(actors).run();
    (report, memory)
}

fn total_suspicions(memory: &Alg1Memory, n: usize) -> u64 {
    ProcessId::all(n)
        .map(|k| memory.peek_total_suspicions(k))
        .sum()
}

fn main() {
    let n = 5;

    println!("== A1: initial candidate set (Full vs SelfOnly), {n} processes, 3 seeds ==");
    let mut t = Table::new(&[
        "init",
        "seed",
        "stabilized",
        "leader",
        "stable from",
        "total suspicions",
    ]);
    for init in [CandidateInit::Full, CandidateInit::SelfOnly] {
        for seed in [1u64, 2, 3] {
            let (report, memory) = run(n, init.clone(), 1, p(0), None, seed);
            let stab = report.stabilization();
            t.row(&[
                format!("{init:?}"),
                seed.to_string(),
                report.stabilized_for(0.2).to_string(),
                stab.map_or("-".into(), |s| s.leader.to_string()),
                stab.map_or("-".into(), |s| s.stable_from.ticks().to_string()),
                total_suspicions(&memory, n).to_string(),
            ]);
            assert!(
                report.stabilization().is_some(),
                "{init:?} seed {seed} must elect"
            );
        }
    }
    println!("{t}");
    println!("(measured: Full and SelfOnly behave *identically* here — the very first T3");
    println!(" scan refreshes every candidate set before the choice can matter, so the");
    println!(" paper's freedom in choosing initial candidates is real but inconsequential)");
    println!();

    println!("== A2: timeout slack (line 27 '+1' generalized), failover at t=30000 ==");
    let mut t = Table::new(&[
        "slack",
        "stabilized",
        "stable from (no crash)",
        "re-stable from (crash)",
        "total suspicions",
    ]);
    for slack in [1u64, 4, 16, 64] {
        let (calm, memory) = run(n, CandidateInit::Full, slack, p(0), None, 7);
        let calm_from = calm.stabilization().map(|s| s.stable_from.ticks());
        let (crashy, _) = run(n, CandidateInit::Full, slack, p(1), Some(30_000), 7);
        let re_from = crashy.stabilization().map(|s| s.stable_from.ticks());
        t.row(&[
            slack.to_string(),
            (calm.stabilized_for(0.2) && crashy.stabilization().is_some()).to_string(),
            calm_from.map_or("-".into(), |v| v.to_string()),
            re_from.map_or("-".into(), |v| v.to_string()),
            total_suspicions(&memory, n).to_string(),
        ]);
        assert!(calm.stabilization().is_some(), "slack {slack} must elect");
        assert!(
            crashy.stabilization().is_some(),
            "slack {slack} must fail over"
        );
    }
    println!("{t}");
    println!("(measured: slack suppresses chaos-phase suspicions (116 → 0) and, on this");
    println!(" workload, even speeds up failover — short timeouts cause secondary churn");
    println!(" after the crash that outweighs their faster detection; pure detection");
    println!(" latency grows linearly with slack and would dominate for slack >> sigma)");
    println!();

    println!("== A3: identity of the AWB1 timely process ==");
    let mut t = Table::new(&["timely", "stabilized", "leader", "stable from"]);
    for timely in [0usize, 2, 4] {
        let (report, _) = run(n, CandidateInit::Full, 1, p(timely), None, 11);
        let stab = report.stabilization();
        t.row(&[
            p(timely).to_string(),
            report.stabilized_for(0.2).to_string(),
            stab.map_or("-".into(), |s| s.leader.to_string()),
            stab.map_or("-".into(), |s| s.stable_from.ticks().to_string()),
        ]);
        assert!(stab.is_some(), "timely={timely} must elect");
    }
    println!("{t}");
    println!("(the elected leader need not be the timely process: anyone whose suspicion");
    println!(" count freezes below the timely one's wins the lexicographic rule — the");
    println!(" paper's B-set argument, visible in the data)");
}
