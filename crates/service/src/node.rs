//! One service node: the leader-gated replica loop.
//!
//! A node couples three things its host (simulator actor, coop task, or
//! dedicated thread) drives through one [`poll`](ServiceNode::poll) entry
//! point: the Ω estimate it is handed, its replica of the replicated log,
//! and its deterministic KV state machine. The gating rule is the whole
//! protocol: a node *serves* only while its own Ω output names itself —
//! gets are answered from the local replica immediately, puts are
//! submitted to the log — and everything drained while not leader is
//! refused. Liveness of the service is therefore exactly the liveness Ω
//! provides, which is what makes failover cost attributable to the
//! election.

use std::collections::VecDeque;
use std::sync::Arc;

use omega_consensus::{KvCommand, KvStore, LogEvent, LogHandle, LogShared};
use omega_registers::ProcessId;

use crate::ledger::Ledger;
use crate::workload::{RequestKind, WorkloadSpec};

/// One replica of the leader-gated KV service.
pub struct ServiceNode {
    pid: ProcessId,
    ledger: Arc<Ledger>,
    log: LogHandle<KvCommand>,
    store: KvStore,
    /// Request ids behind the log's pending queue, in submission order —
    /// an `ours` commit event retires exactly the front entry.
    submitted: VecDeque<usize>,
    /// Proposal rounds lost to another proposer (operation-cost metric).
    superseded: u64,
}

impl ServiceNode {
    /// A fresh replica `pid` over the shared log and the shared ledger.
    #[must_use]
    pub fn new(pid: ProcessId, ledger: Arc<Ledger>, shared: Arc<LogShared<KvCommand>>) -> Self {
        let mut log = LogHandle::new(shared, pid);
        log.enable_events();
        ServiceNode {
            pid,
            ledger,
            log,
            store: KvStore::new(),
            submitted: VecDeque::new(),
            superseded: 0,
        }
    }

    /// This replica's identity.
    #[must_use]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// One chunk of service work, given the node's current Ω estimate and
    /// the current tick: publish the estimate, drain the inbox (serve or
    /// refuse), advance the log, acknowledge commits, and apply the
    /// decided prefix to the local store.
    pub fn poll(&mut self, estimate: Option<ProcessId>, now: u64) {
        self.ledger.publish(self.pid, estimate);

        let is_leader = estimate == Some(self.pid);
        for id in self.ledger.drain(self.pid) {
            if !is_leader {
                self.ledger.reject(id, now);
                continue;
            }
            match self.ledger.meta()[id].kind {
                RequestKind::Get { key } => {
                    // Leader-local read: served from the replica, no slot.
                    let _ = self.store.get(&WorkloadSpec::key_name(key));
                    self.ledger.complete(id, now);
                }
                RequestKind::Put { key } => {
                    self.log
                        .submit(KvCommand::Put(WorkloadSpec::key_name(key), id as u64));
                    self.submitted.push_back(id);
                }
            }
        }

        // The log needs a leader hint to make progress; with no estimate
        // there is nothing sound to do this poll.
        if let Some(leader) = estimate {
            self.log.step(leader);
        }

        for event in self.log.take_events() {
            match event {
                LogEvent::Committed { ours: true, .. } => {
                    if let Some(id) = self.submitted.pop_front() {
                        self.ledger.complete(id, now);
                    }
                }
                LogEvent::Committed { ours: false, .. } => {}
                LogEvent::Superseded { .. } => self.superseded += 1,
            }
        }
        self.store.apply_committed(self.log.committed());
    }

    /// The replica's current state machine.
    #[must_use]
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Slots this replica has learned committed.
    #[must_use]
    pub fn committed_slots(&self) -> usize {
        self.log.committed().len()
    }

    /// Proposal rounds this replica lost to a competing proposer.
    #[must_use]
    pub fn superseded_rounds(&self) -> u64 {
        self.superseded
    }
}

impl std::fmt::Debug for ServiceNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceNode")
            .field("pid", &self.pid)
            .field("committed_slots", &self.committed_slots())
            .field("inflight", &self.submitted.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RequestMeta;
    use omega_registers::MemorySpace;

    fn setup(n: usize, meta: Vec<RequestMeta>) -> (Arc<Ledger>, Vec<ServiceNode>) {
        let space = MemorySpace::new(n);
        let shared = LogShared::<KvCommand>::new(space);
        let ledger = Ledger::new(meta, n);
        let nodes = ProcessId::all(n)
            .map(|pid| ServiceNode::new(pid, Arc::clone(&ledger), Arc::clone(&shared)))
            .collect();
        (ledger, nodes)
    }

    fn put(arrival: u64, key: u64) -> RequestMeta {
        RequestMeta {
            arrival,
            deadline: arrival + 10_000,
            fail_fast: None,
            client: 0,
            kind: RequestKind::Put { key },
        }
    }

    fn get(arrival: u64, key: u64) -> RequestMeta {
        RequestMeta {
            arrival,
            deadline: arrival + 10_000,
            fail_fast: None,
            client: 0,
            kind: RequestKind::Get { key },
        }
    }

    #[test]
    fn leader_serves_gets_and_replicates_puts() {
        let (ledger, mut nodes) = setup(2, vec![put(0, 1), get(1, 1)]);
        let leader = ProcessId::new(0);
        ledger.publish(leader, Some(leader));
        ledger.issue(0, 0);
        ledger.issue(1, 1);
        for now in 0..500 {
            nodes[0].poll(Some(leader), now);
        }
        let states = ledger.states();
        assert!(matches!(
            states[0],
            crate::ledger::RequestState::Committed { .. }
        ));
        assert!(matches!(
            states[1],
            crate::ledger::RequestState::Committed { at: 0..=2 }
        ));
        assert_eq!(nodes[0].store().get("k001"), Some(0), "value = request id");
        // The follower catches up by stepping with any leader hint.
        for now in 0..500 {
            nodes[1].poll(Some(leader), now);
        }
        assert_eq!(nodes[1].committed_slots(), 1);
        assert_eq!(nodes[1].store().get("k001"), Some(0));
    }

    #[test]
    fn non_leader_refuses_drained_requests() {
        let (ledger, mut nodes) = setup(2, vec![get(0, 3)]);
        // Route to node 1, which believes node 0 leads.
        ledger.publish(ProcessId::new(0), Some(ProcessId::new(1)));
        ledger.publish(ProcessId::new(1), Some(ProcessId::new(1)));
        ledger.issue(0, 0);
        nodes[1].poll(Some(ProcessId::new(0)), 5);
        assert_eq!(
            ledger.states()[0],
            crate::ledger::RequestState::Rejected { at: 5 }
        );
    }
}
