//! What one service run measured, and its one-line JSON record.
//!
//! The headline is the **unavailability window**: for every scripted
//! crash, the span from the crash tick until the service next
//! acknowledged *any* request, together with the requests refused or
//! stalled while it lasted. That is the user-facing denominator the
//! election benchmarks lacked — "stabilization ticks" priced in protocol
//! time, windows price it in failed requests.

use std::fmt::Write as _;

use omega_core::OmegaVariant;

use crate::histogram::Histogram;
use crate::ledger::{Ledger, RequestState};
use crate::spec::ServiceScenario;

/// One failover's user-visible cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnavailWindow {
    /// Tick of the scripted crash.
    pub crash_at: u64,
    /// Tick of the first acknowledgment after the crash, or `None` if the
    /// service never recovered inside the horizon.
    pub healed_at: Option<u64>,
    /// Requests refused whose lifetime overlapped the window.
    pub rejected: u64,
    /// Requests stalled past deadline whose lifetime overlapped the window.
    pub stalled: u64,
}

impl UnavailWindow {
    /// The window's length in ticks (up to `horizon` when it never healed).
    #[must_use]
    pub fn duration(&self, horizon: u64) -> u64 {
        self.healed_at
            .unwrap_or(horizon)
            .saturating_sub(self.crash_at)
    }
}

/// Everything one service-scenario run measured on one backend.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Which backend produced it (`"sim"`, `"threads"`, `"coop"`).
    pub backend: &'static str,
    /// Service-scenario name.
    pub scenario: String,
    /// The Ω variant underneath.
    pub variant: OmegaVariant,
    /// Number of service nodes.
    pub n: usize,
    /// Run horizon in ticks.
    pub horizon: u64,
    /// Requests in the generated schedule.
    pub requests: u64,
    /// Requests acknowledged.
    pub committed: u64,
    /// Requests actively refused (routed to a non-leader, or unroutable).
    pub rejected: u64,
    /// Requests the client gave up on at its deadline.
    pub stalled: u64,
    /// Requests still unresolved at the horizon with a live deadline
    /// (excluded from the SLO).
    pub inflight: u64,
    /// Acknowledgment-latency quantiles in ticks (HDR-style, ≤ 6.25 %
    /// relative error; the max is exact).
    pub commit_p50: u64,
    /// 95th percentile acknowledgment latency (ticks).
    pub commit_p95: u64,
    /// 99th percentile acknowledgment latency (ticks).
    pub commit_p99: u64,
    /// Largest acknowledgment latency (ticks, exact).
    pub commit_max: u64,
    /// One window per scripted crash, in crash order.
    pub windows: Vec<UnavailWindow>,
    /// Requests refused while a campaign split was installed — their
    /// rejection tick fell inside the `[from, until)` span of a
    /// partition, a directed cut, or one of a flap's install windows —
    /// the service-layer attribution of chaos-induced unavailability.
    /// Zero when the scenario has no campaign.
    pub in_partition_rejected: u64,
    /// Requests that outlived the workload's fail-fast stall bound: ended
    /// `Stalled`, or resolved after `arrival + stall_bound`. Always zero
    /// when the workload sets no bound; gating this at zero in
    /// `BENCH_service.json` is the drain SLO — under hostile chaos the
    /// ledger must terminate every request promptly, not park it.
    pub stall_bound_breaches: u64,
    /// Whether the election (re-)stabilized by the end of the run.
    pub stabilized: bool,
    /// Space-wide shared-register writes (election + replication).
    pub total_writes: u64,
    /// Log slots decided across the run.
    pub log_slots: u64,
    /// Wall-clock run time in milliseconds (advisory; never gated on sim).
    pub elapsed_ms: f64,
    /// Worker-pool size of the cooperative backend's sharded wheel
    /// (`None` on sim and threads, which have no pool to size).
    pub workers: Option<usize>,
}

impl ServiceOutcome {
    /// Builds the outcome from a finished run's raw parts: the ledger's
    /// final states, the scripted crash ticks (in script order), and the
    /// backend's counters.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn assemble(
        backend: &'static str,
        scenario: &ServiceScenario,
        ledger: &Ledger,
        crashes: &[u64],
        stabilized: bool,
        total_writes: u64,
        log_slots: u64,
        elapsed_ms: f64,
    ) -> Self {
        let horizon = scenario.election.horizon;
        let meta = ledger.meta();
        let states = ledger.states();

        let mut committed = 0u64;
        let mut rejected = 0u64;
        let mut stalled = 0u64;
        let mut inflight = 0u64;
        let mut latencies = Histogram::new();
        let mut ack_ticks: Vec<u64> = Vec::new();
        for (m, state) in meta.iter().zip(&states) {
            match *state {
                RequestState::Pending => inflight += 1,
                RequestState::Committed { at } => {
                    committed += 1;
                    latencies.record(at.saturating_sub(m.arrival));
                    ack_ticks.push(at);
                }
                RequestState::Rejected { .. } => rejected += 1,
                RequestState::Stalled { .. } => stalled += 1,
            }
        }
        ack_ticks.sort_unstable();

        let mut crash_ticks: Vec<u64> = crashes.to_vec();
        crash_ticks.sort_unstable();
        let mut windows: Vec<UnavailWindow> = crash_ticks
            .into_iter()
            .map(|crash_at| {
                let healed_at = ack_ticks.iter().copied().find(|&t| t > crash_at);
                UnavailWindow {
                    crash_at,
                    healed_at,
                    rejected: 0,
                    stalled: 0,
                }
            })
            .collect();
        // Attribute each failed request to the first window its lifetime
        // [arrival, resolved] overlaps.
        for (m, state) in meta.iter().zip(&states) {
            let (at, is_reject) = match *state {
                RequestState::Rejected { at } => (at, true),
                RequestState::Stalled { at } => (at, false),
                _ => continue,
            };
            if let Some(w) = windows
                .iter_mut()
                .find(|w| m.arrival <= w.healed_at.unwrap_or(horizon) && at >= w.crash_at)
            {
                if is_reject {
                    w.rejected += 1;
                } else {
                    w.stalled += 1;
                }
            }
        }

        // Campaign attribution: a rejection whose tick fell inside an
        // installed split is chaos-induced, not crash-induced — split
        // leader estimates across the cut misroute requests even though
        // every node is alive. Partitions and directed cuts contribute
        // their whole span; a flap contributes only its install windows
        // (the healed half-cycles are the service's to recover in).
        let partition_spans: Vec<(u64, u64)> = scenario
            .election
            .campaign
            .iter()
            .flat_map(|c| &c.phases)
            .flat_map(|phase| match phase {
                omega_sim::chaos::ChaosPhase::Partition { from, until, .. }
                | omega_sim::chaos::ChaosPhase::Cut { from, until, .. } => {
                    vec![(*from, *until)]
                }
                omega_sim::chaos::ChaosPhase::Flap {
                    period,
                    from,
                    until,
                    ..
                } => omega_sim::chaos::flap_spans(*period, *from, *until),
                _ => Vec::new(),
            })
            .collect();
        let in_partition_rejected = states
            .iter()
            .filter(|state| match **state {
                RequestState::Rejected { at } => partition_spans
                    .iter()
                    .any(|&(from, until)| at >= from && at < until),
                _ => false,
            })
            .count() as u64;

        // Drain accounting: with a fail-fast bound configured, every
        // request must terminate by `arrival + stall_bound` — a stall, or
        // any resolution after the bound tick, is a breach. Pending
        // requests are excluded like the rest of the SLO (their bound may
        // sit beyond the horizon).
        let stall_bound_breaches = meta
            .iter()
            .zip(&states)
            .filter(|(m, state)| {
                let Some(bound_at) = m.fail_fast else {
                    return false;
                };
                match **state {
                    RequestState::Pending => false,
                    RequestState::Stalled { .. } => true,
                    RequestState::Committed { at } | RequestState::Rejected { at } => at > bound_at,
                }
            })
            .count() as u64;

        ServiceOutcome {
            backend,
            scenario: scenario.name.clone(),
            variant: scenario.election.variant,
            n: scenario.election.n,
            horizon,
            requests: meta.len() as u64,
            committed,
            rejected,
            stalled,
            inflight,
            commit_p50: latencies.value_at_quantile(0.50),
            commit_p95: latencies.value_at_quantile(0.95),
            commit_p99: latencies.value_at_quantile(0.99),
            commit_max: latencies.max(),
            windows,
            in_partition_rejected,
            stall_bound_breaches,
            stabilized,
            total_writes,
            log_slots,
            elapsed_ms,
            workers: None,
        }
    }

    /// Tags the outcome with the coop backend's worker-pool size (the
    /// coop driver calls this; other backends leave it `None`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Total unavailability across all windows, in ticks.
    #[must_use]
    pub fn unavail_ticks(&self) -> u64 {
        self.windows.iter().map(|w| w.duration(self.horizon)).sum()
    }

    /// Requests refused inside unavailability windows.
    #[must_use]
    pub fn unavail_rejected(&self) -> u64 {
        self.windows.iter().map(|w| w.rejected).sum()
    }

    /// Requests stalled inside unavailability windows.
    #[must_use]
    pub fn unavail_stalled(&self) -> u64 {
        self.windows.iter().map(|w| w.stalled).sum()
    }

    /// The flat one-line JSON record the `service` bench bin emits —
    /// defined here so the determinism test and the bin serialize through
    /// one code path. Every field except `wall_ms` is a pure function of
    /// `(scenario, seed)` on the sim backend.
    #[must_use]
    pub fn json_record(&self) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\"scenario\":{},\"backend\":{},\"variant\":{},\"n\":{},",
            json_str(&self.scenario),
            json_str(self.backend),
            json_str(self.variant.name()),
            self.n,
        );
        if let Some(workers) = self.workers {
            let _ = write!(o, "\"workers\":{workers},");
        }
        let _ = write!(
            o,
            "\"requests\":{},\"committed\":{},\"rejected\":{},\"stalled\":{},\"inflight\":{},",
            self.requests, self.committed, self.rejected, self.stalled, self.inflight,
        );
        let _ = write!(
            o,
            "\"commit_p50\":{},\"commit_p95\":{},\"commit_p99\":{},\"commit_max\":{},",
            self.commit_p50, self.commit_p95, self.commit_p99, self.commit_max,
        );
        let _ = write!(
            o,
            "\"crashes\":{},\"unavail_ticks\":{},\"unavail_rejected\":{},\"unavail_stalled\":{},",
            self.windows.len(),
            self.unavail_ticks(),
            self.unavail_rejected(),
            self.unavail_stalled(),
        );
        let _ = write!(
            o,
            "\"in_partition_rejected\":{},\"stall_bound_breaches\":{},",
            self.in_partition_rejected, self.stall_bound_breaches,
        );
        let _ = write!(
            o,
            "\"stabilized\":{},\"total_writes\":{},\"log_slots\":{},\"wall_ms\":{:.3}}}",
            self.stabilized, self.total_writes, self.log_slots, self.elapsed_ms,
        );
        o
    }
}

/// Minimal JSON string escaping (same dialect as the scenarios bin).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Ledger;
    use crate::workload::{RequestKind, RequestMeta};
    use omega_registers::ProcessId;

    fn scenario() -> ServiceScenario {
        crate::registry::all()
            .into_iter()
            .find(|s| s.name == "failover/alg1")
            .expect("registry has the headline scenario")
    }

    fn request(arrival: u64) -> RequestMeta {
        RequestMeta {
            arrival,
            deadline: arrival + 1_000,
            fail_fast: None,
            client: 0,
            kind: RequestKind::Get { key: 0 },
        }
    }

    #[test]
    fn windows_measure_crash_to_first_ack() {
        let sc = scenario();
        let ledger = Ledger::new(
            vec![
                request(100),
                request(19_000),
                request(21_000),
                request(26_000),
            ],
            sc.election.n,
        );
        // Before the crash at 20_000: two acks. After: one reject inside
        // the window, then the healing ack.
        ledger.complete(0, 150);
        ledger.complete(1, 19_100);
        ledger.reject(2, 21_050);
        ledger.complete(3, 26_200);
        let outcome = ServiceOutcome::assemble("sim", &sc, &ledger, &[20_000], true, 10, 3, 1.0);
        assert_eq!(outcome.windows.len(), 1);
        let w = outcome.windows[0];
        assert_eq!(w.crash_at, 20_000);
        assert_eq!(w.healed_at, Some(26_200));
        assert_eq!(w.rejected, 1);
        assert_eq!(w.stalled, 0);
        assert_eq!(outcome.unavail_ticks(), 6_200);
        assert_eq!(outcome.committed, 3);
        assert_eq!(outcome.rejected, 1);
    }

    #[test]
    fn unhealed_window_extends_to_the_horizon() {
        let sc = scenario();
        let ledger = Ledger::new(vec![request(100)], sc.election.n);
        ledger.complete(0, 150);
        let outcome = ServiceOutcome::assemble("sim", &sc, &ledger, &[30_000], false, 0, 0, 1.0);
        assert_eq!(outcome.windows[0].healed_at, None);
        assert_eq!(
            outcome.unavail_ticks(),
            sc.election.horizon - 30_000,
            "never-healed windows run to the horizon"
        );
    }

    #[test]
    fn stall_bound_breaches_count_stalls_and_late_resolutions() {
        let sc = scenario();
        let mut meta = vec![request(100), request(200), request(300), request(400)];
        for m in &mut meta[..3] {
            m.fail_fast = Some(m.arrival + 500);
        }
        // Request 3's bound is looser than its deadline, so the sweep
        // stalls it — a breach all the same.
        meta[3].fail_fast = Some(meta[3].arrival + 2_000);
        let ledger = Ledger::new(meta, sc.election.n);
        ledger.complete(0, 400); // inside the bound: clean
        ledger.complete(1, 900); // committed past arrival + 500: breach
        ledger.reject(2, 800); // rejected exactly at the bound tick: clean
        ledger.sweep(10_000); // request 3 stalls at its deadline: breach
        let outcome = ServiceOutcome::assemble("sim", &sc, &ledger, &[], true, 0, 0, 1.0);
        assert_eq!(outcome.stalled, 1);
        assert_eq!(outcome.stall_bound_breaches, 2);
        assert!(outcome.json_record().contains("\"stall_bound_breaches\":2"));
    }

    #[test]
    fn json_record_is_flat_and_complete() {
        let sc = scenario();
        let ledger = Ledger::new(vec![request(100)], sc.election.n);
        ledger.publish(ProcessId::new(0), Some(ProcessId::new(0)));
        ledger.complete(0, 400);
        let outcome = ServiceOutcome::assemble("sim", &sc, &ledger, &[], true, 42, 7, 2.5);
        let record = outcome.json_record();
        for key in [
            "\"scenario\":",
            "\"backend\":\"sim\"",
            "\"variant\":",
            "\"n\":",
            "\"requests\":1",
            "\"committed\":1",
            "\"rejected\":0",
            "\"stalled\":0",
            "\"inflight\":0",
            "\"commit_p50\":",
            "\"crashes\":0",
            "\"unavail_ticks\":0",
            "\"in_partition_rejected\":0",
            "\"stall_bound_breaches\":0",
            "\"stabilized\":true",
            "\"total_writes\":42",
            "\"log_slots\":7",
            "\"wall_ms\":2.500",
        ] {
            assert!(record.contains(key), "missing {key} in {record}");
        }
        assert!(!record.contains('\n'));
        assert!(
            !record.contains("\"workers\":"),
            "poolless backends emit no workers field"
        );
        let pooled = outcome.with_workers(4).json_record();
        assert!(pooled.contains("\"workers\":4,"));
    }
}
