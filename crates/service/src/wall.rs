//! Wall-clock backends for service scenarios: cooperative and
//! per-node-thread.
//!
//! Both map scenario ticks onto real time exactly as the election drivers
//! do — one tick is `tick` of wall clock, nodes poll every
//! `step_interval` — and replay the crash script off the wall clock. The
//! cooperative backend multiplexes the service loops and the workload
//! pump onto the *same* deadline wheel as the election's `2n` task loops,
//! so service work competes with election steps for the same workers;
//! the thread backend gives each service loop its own OS thread next to
//! the node's two. Wall-clock outcomes are inherently timing-dependent:
//! their records are written for reference and compared only advisorily,
//! never byte-gated.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omega_consensus::{KvCommand, LogShared};
use omega_registers::ProcessId;
use omega_runtime::{Cluster, CoopConfig, CoopTask, LeaderProbe, NodeConfig};
use omega_scenario::CrashSpec;
use omega_sim::chaos::ChaosPhase;

use crate::ledger::Ledger;
use crate::node::ServiceNode;
use crate::outcome::ServiceOutcome;
use crate::spec::ServiceScenario;

/// Wall-clock ticks elapsed since `epoch` under a `tick`-sized tick.
fn ticks_since(epoch: Instant, tick: Duration) -> u64 {
    (epoch.elapsed().as_micros() / tick.as_micros().max(1)) as u64
}

/// One service replica's cooperative loop.
struct ServiceNodeTask {
    node: ServiceNode,
    probe: LeaderProbe,
    epoch: Instant,
    tick: Duration,
    step: Duration,
    stop: Arc<AtomicBool>,
}

impl CoopTask for ServiceNodeTask {
    fn poll(&mut self) -> Option<Instant> {
        if self.stop.load(Ordering::Relaxed) || self.probe.is_crashed() {
            // Retire. A crashed node stops publishing, so its stale
            // estimate keeps attracting traffic until the survivors'
            // estimates outvote it — same client-visible failure mode as
            // the simulator.
            return None;
        }
        let now = ticks_since(self.epoch, self.tick);
        self.node.poll(self.probe.leader(), now);
        Some(Instant::now() + self.step)
    }
}

/// The client population's cooperative loop: issue due arrivals, sweep
/// deadlines.
struct PumpTask {
    ledger: Arc<Ledger>,
    next: usize,
    epoch: Instant,
    tick: Duration,
    cadence: Duration,
    stop: Arc<AtomicBool>,
}

impl PumpTask {
    fn pump(&mut self, now: u64) {
        while self.next < self.ledger.requests() {
            if self.ledger.meta()[self.next].arrival > now {
                break;
            }
            self.ledger.issue(self.next, now);
            self.next += 1;
        }
        self.ledger.sweep(now);
    }
}

impl CoopTask for PumpTask {
    fn poll(&mut self) -> Option<Instant> {
        if self.stop.load(Ordering::Relaxed) {
            return None;
        }
        let now = ticks_since(self.epoch, self.tick);
        self.pump(now);
        Some(Instant::now() + self.cadence)
    }
}

/// Shared pacing of the wall-clock service drivers.
#[derive(Debug, Clone, Copy)]
pub struct WallPacing {
    /// Real-time length of one scenario tick.
    pub tick: Duration,
    /// Pause between a node's consecutive polls (election and service).
    pub step_interval: Duration,
    /// Stability window for the post-run leader check.
    pub window: Duration,
    /// Workload-pump cadence.
    pub pump_cadence: Duration,
}

impl Default for WallPacing {
    fn default() -> Self {
        WallPacing {
            tick: Duration::from_micros(100),
            step_interval: Duration::from_micros(150),
            window: Duration::from_millis(40),
            pump_cadence: Duration::from_micros(500),
        }
    }
}

impl WallPacing {
    fn node_config(&self) -> NodeConfig {
        NodeConfig {
            step_interval: self.step_interval,
            tick: self.tick,
        }
    }
}

/// One wall-timed campaign injection (the service twin of the election
/// wall loop's realization): partitions and heals act on the cluster's
/// register space, wave crashes act through the crash machinery. Storms
/// are absent — no service wall backend is admitted with one.
enum ChaosAction {
    Partition(Vec<Vec<ProcessId>>),
    Cut(Vec<ProcessId>, Vec<ProcessId>),
    Heal,
    Crash(ProcessId),
}

/// Drives the crash script off the wall clock, then waits out the horizon.
/// Returns the scripted crash ticks and whether a stable leader emerged.
fn run_script(
    cluster: &Cluster,
    scenario: &ServiceScenario,
    pacing: &WallPacing,
) -> (Vec<u64>, bool) {
    let epoch = Instant::now();
    let election = &scenario.election;
    let mut script: Vec<CrashSpec> = election.crashes.clone();
    script.sort_by_key(|c| match *c {
        CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick,
    });
    // Campaign phases, flattened under the simulator's convention: actions
    // at or beyond the horizon never fire, an unhealed partition stays
    // installed to the end.
    let mut chaos_actions: Vec<(u64, ChaosAction)> = Vec::new();
    if let Some(campaign) = &election.campaign {
        for phase in &campaign.phases {
            match phase {
                ChaosPhase::Partition {
                    groups,
                    from,
                    until,
                } => {
                    chaos_actions.push((*from, ChaosAction::Partition(groups.clone())));
                    chaos_actions.push((*until, ChaosAction::Heal));
                }
                ChaosPhase::Wave { crash, at, .. } => {
                    chaos_actions.extend(crash.iter().map(|&pid| (*at, ChaosAction::Crash(pid))));
                }
                ChaosPhase::Heal { at } => chaos_actions.push((*at, ChaosAction::Heal)),
                ChaosPhase::Storm { .. } => {}
                ChaosPhase::Cut {
                    blinded,
                    hidden,
                    from,
                    until,
                } => {
                    chaos_actions.push((*from, ChaosAction::Cut(blinded.clone(), hidden.clone())));
                    chaos_actions.push((*until, ChaosAction::Heal));
                }
                ChaosPhase::Flap {
                    groups,
                    period,
                    from,
                    until,
                } => {
                    for (install, heal) in omega_sim::chaos::flap_spans(*period, *from, *until) {
                        chaos_actions.push((install, ChaosAction::Partition(groups.clone())));
                        chaos_actions.push((heal, ChaosAction::Heal));
                    }
                }
            }
        }
        chaos_actions.retain(|(tick, _)| *tick < election.horizon);
        chaos_actions.sort_by_key(|&(tick, _)| tick);
    }
    let mut next_action = 0;
    let mut crash_ticks = Vec::with_capacity(script.len());
    let mut pending = script.into_iter().peekable();
    loop {
        let now = ticks_since(epoch, pacing.tick);
        while let Some(&next) = pending.peek() {
            let due = match next {
                CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick,
            };
            if due > now {
                break;
            }
            match next {
                CrashSpec::At { pid, .. } => cluster.crash(pid),
                CrashSpec::LeaderAt { .. } => {
                    let _ = cluster.crash_current_leader();
                }
            }
            crash_ticks.push(due);
            pending.next();
        }
        while next_action < chaos_actions.len() && chaos_actions[next_action].0 <= now {
            match &chaos_actions[next_action].1 {
                ChaosAction::Partition(groups) => cluster.space().install_partition(groups),
                ChaosAction::Cut(blinded, hidden) => cluster.space().install_cut(blinded, hidden),
                ChaosAction::Heal => cluster.space().heal_partition(),
                ChaosAction::Crash(pid) => cluster.crash(*pid),
            }
            next_action += 1;
        }
        if now >= election.horizon {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let stabilized = cluster
        .await_stable_leader(pacing.window, Duration::from_secs(5))
        .is_some();
    (crash_ticks, stabilized)
}

/// Realizes a [`ServiceScenario`] on the cooperative runtime: election
/// loops, service loops, and the workload pump all multiplexed over the
/// same deadline wheel — sharded per worker when `workers > 1`, with the
/// service tasks distributed round-robin across the shards after the node
/// loops and stolen like any other task when their shard backs up.
#[derive(Debug, Clone, Copy)]
pub struct ServiceCoopDriver {
    /// Tick/step/window pacing.
    pub pacing: WallPacing,
    /// Worker threads multiplexing the whole task set.
    pub workers: usize,
}

impl Default for ServiceCoopDriver {
    fn default() -> Self {
        ServiceCoopDriver {
            pacing: WallPacing::default(),
            workers: 1,
        }
    }
}

impl ServiceCoopDriver {
    /// Runs the scenario to its horizon and assembles the outcome.
    #[must_use]
    pub fn run(&self, scenario: &ServiceScenario) -> ServiceOutcome {
        let started = Instant::now();
        let election = &scenario.election;
        let n = election.n;
        let pacing = self.pacing;
        let ledger = Ledger::new(scenario.requests(), n);
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let mut shared_slot: Option<Arc<LogShared<KvCommand>>> = None;
        let config = CoopConfig {
            node: pacing.node_config(),
            workers: self.workers,
        };
        let cluster = Cluster::start_coop_with(election.variant, n, config, |space, probes| {
            let shared = LogShared::<KvCommand>::new(space.clone());
            shared_slot = Some(Arc::clone(&shared));
            let mut tasks: Vec<Box<dyn CoopTask>> = probes
                .iter()
                .map(|probe| {
                    Box::new(ServiceNodeTask {
                        node: ServiceNode::new(
                            probe.pid(),
                            Arc::clone(&ledger),
                            Arc::clone(&shared),
                        ),
                        probe: probe.clone(),
                        epoch,
                        tick: pacing.tick,
                        step: pacing.step_interval,
                        stop: Arc::clone(&stop),
                    }) as Box<dyn CoopTask>
                })
                .collect();
            tasks.push(Box::new(PumpTask {
                ledger: Arc::clone(&ledger),
                next: 0,
                epoch,
                tick: pacing.tick,
                cadence: pacing.pump_cadence,
                stop: Arc::clone(&stop),
            }));
            tasks
        });
        let shared = shared_slot.expect("task factory ran");

        let (crash_ticks, stabilized) = run_script(&cluster, scenario, &pacing);
        stop.store(true, Ordering::Relaxed);
        let total_writes = cluster.space().stats().total_writes();
        cluster.shutdown();
        ledger.sweep(election.horizon);

        ServiceOutcome::assemble(
            "coop",
            scenario,
            &ledger,
            &crash_ticks,
            stabilized,
            total_writes,
            shared.allocated_slots() as u64,
            started.elapsed().as_secs_f64() * 1_000.0,
        )
        .with_workers(self.workers)
    }
}

/// Realizes a [`ServiceScenario`] with dedicated OS threads: each node's
/// two election loops plus one service loop, and one pump thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceThreadDriver {
    /// Tick/step/window pacing.
    pub pacing: WallPacing,
}

impl ServiceThreadDriver {
    /// Runs the scenario to its horizon and assembles the outcome.
    #[must_use]
    pub fn run(&self, scenario: &ServiceScenario) -> ServiceOutcome {
        let started = Instant::now();
        let election = &scenario.election;
        let n = election.n;
        let pacing = self.pacing;
        let ledger = Ledger::new(scenario.requests(), n);
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();

        let cluster = Cluster::start(election.variant, n, pacing.node_config());
        let shared = LogShared::<KvCommand>::new(cluster.space().clone());

        let mut workers = Vec::with_capacity(n + 1);
        for pid in omega_registers::ProcessId::all(n) {
            let probe = cluster.node(pid).probe();
            let mut node = ServiceNode::new(pid, Arc::clone(&ledger), Arc::clone(&shared));
            let stop = Arc::clone(&stop);
            let (tick, step) = (pacing.tick, pacing.step_interval);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) && !probe.is_crashed() {
                    node.poll(probe.leader(), ticks_since(epoch, tick));
                    std::thread::sleep(step);
                }
            }));
        }
        {
            let ledger = Arc::clone(&ledger);
            let stop = Arc::clone(&stop);
            let (tick, cadence) = (pacing.tick, pacing.pump_cadence);
            workers.push(std::thread::spawn(move || {
                let mut pump = PumpTask {
                    ledger,
                    next: 0,
                    epoch,
                    tick,
                    cadence,
                    stop,
                };
                while pump.poll().is_some() {
                    std::thread::sleep(cadence);
                }
            }));
        }

        let (crash_ticks, stabilized) = run_script(&cluster, scenario, &pacing);
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            let _ = worker.join();
        }
        let total_writes = cluster.space().stats().total_writes();
        cluster.shutdown();
        ledger.sweep(election.horizon);

        ServiceOutcome::assemble(
            "threads",
            scenario,
            &ledger,
            &crash_ticks,
            stabilized,
            total_writes,
            shared.allocated_slots() as u64,
            started.elapsed().as_secs_f64() * 1_000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::ServiceScenario;
    use crate::workload::WorkloadSpec;
    use omega_core::OmegaVariant;
    use omega_scenario::Scenario;

    /// A scenario small and short enough for a unit test: ~1 s of wall
    /// clock, one leader crash halfway.
    fn tiny() -> ServiceScenario {
        ServiceScenario::new(
            "test/coop-tiny",
            Scenario::fault_free(OmegaVariant::Alg1, 3)
                .crash_leader_at(4_000)
                .horizon(10_000),
            WorkloadSpec {
                clients: 50,
                mean_interarrival: 2_000,
                put_pct: 20,
                key_space: 8,
                deadline: 2_000,
                stall_bound: None,
                start: 500,
                stop: 7_500,
            },
        )
    }

    #[test]
    fn coop_backend_serves_and_survives_failover() {
        let outcome = ServiceCoopDriver::default().run(&tiny());
        assert_eq!(outcome.backend, "coop");
        assert_eq!(outcome.windows.len(), 1);
        assert!(
            outcome.committed > 0,
            "a real-time run must acknowledge some requests: {outcome:?}"
        );
        assert_eq!(
            outcome.requests,
            outcome.committed + outcome.rejected + outcome.stalled + outcome.inflight
        );
    }

    #[test]
    fn coop_backend_realizes_partition_campaigns() {
        // A tiny partition-heal campaign on the wall clock: the run must
        // survive the cut, and the outcome still carries the attribution
        // field (possibly zero — wall timing decides how many requests
        // land mid-partition).
        let sc = ServiceScenario::new(
            "test/coop-partition",
            Scenario::fault_free(OmegaVariant::Alg1, 3)
                .campaign(
                    omega_sim::chaos::Campaign::new().phase(ChaosPhase::Partition {
                        groups: vec![
                            vec![omega_registers::ProcessId::new(0)],
                            vec![
                                omega_registers::ProcessId::new(1),
                                omega_registers::ProcessId::new(2),
                            ],
                        ],
                        from: 3_000,
                        until: 6_000,
                    }),
                )
                .horizon(12_000),
            WorkloadSpec {
                clients: 50,
                mean_interarrival: 2_000,
                put_pct: 20,
                key_space: 8,
                deadline: 2_000,
                stall_bound: None,
                start: 500,
                stop: 9_000,
            },
        );
        let outcome = ServiceCoopDriver::default().run(&sc);
        assert_eq!(outcome.backend, "coop");
        assert_eq!(outcome.windows.len(), 0, "partitions are not crashes");
        assert!(outcome.committed > 0, "service kept serving: {outcome:?}");
        assert_eq!(
            outcome.requests,
            outcome.committed + outcome.rejected + outcome.stalled + outcome.inflight
        );
    }

    #[test]
    fn registry_scenarios_admit_the_coop_backend() {
        for sc in registry::all() {
            let e = sc.election.eligible_drivers();
            assert!(e.sim && e.coop, "{} must run on sim and coop", sc.name);
        }
    }
}
