//! A service scenario: an election scenario plus the workload that rides
//! on it.
//!
//! The election half reuses the scenario crate's declarative [`Scenario`]
//! wholesale — adversary, AWB envelope, timers, crash script, horizon,
//! seed — so a service experiment is environment-compatible with the
//! election experiments it extends. The workload half adds the open-loop
//! client population. Both are pure data; drivers realize them.

use omega_scenario::Scenario;

use crate::workload::WorkloadSpec;

/// A complete, backend-free description of one service experiment.
#[derive(Debug, Clone)]
pub struct ServiceScenario {
    /// Name used in tables, JSON records, and `--only` filters.
    pub name: String,
    /// The election environment the service runs in. Its `seed` also
    /// seeds the workload, and its crash script is the failure schedule
    /// the unavailability windows are measured against.
    pub election: Scenario,
    /// The open-loop client population.
    pub workload: WorkloadSpec,
}

impl ServiceScenario {
    /// Builds a service scenario, stamping `name` onto the election spec
    /// too (so election-level reports stay attributable).
    #[must_use]
    pub fn new(name: &str, election: Scenario, workload: WorkloadSpec) -> Self {
        let election = election.named(name);
        ServiceScenario {
            name: name.to_string(),
            election,
            workload,
        }
    }

    /// The generated request schedule for this scenario (pure function of
    /// the spec: workload shaped by `workload`, seeded by the election
    /// seed).
    #[must_use]
    pub fn requests(&self) -> Vec<crate::workload::RequestMeta> {
        self.workload.generate(self.election.seed)
    }
}

impl std::fmt::Display for ServiceScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} n={} clients={} crashes={}]",
            self.name,
            self.election.variant,
            self.election.n,
            self.workload.clients,
            self.election.crashes.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_core::OmegaVariant;

    #[test]
    fn name_is_stamped_onto_the_election_spec() {
        let sc = ServiceScenario::new(
            "svc/x",
            Scenario::fault_free(OmegaVariant::Alg1, 3),
            WorkloadSpec {
                clients: 10,
                mean_interarrival: 1_000,
                put_pct: 10,
                key_space: 4,
                deadline: 500,
                stall_bound: None,
                start: 100,
                stop: 5_000,
            },
        );
        assert_eq!(sc.name, "svc/x");
        assert_eq!(sc.election.name, "svc/x");
        assert_eq!(sc.requests(), sc.requests(), "schedule is deterministic");
    }
}
