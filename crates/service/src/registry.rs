//! The committed service-scenario suite — the records `BENCH_service.json`
//! gates against.
//!
//! Sizing note: with 2 000 clients at a 30 000-tick mean inter-arrival
//! over a 48 000-tick window, the suite issues ≈ 3 200 requests, ≈ 10 %
//! of them puts. One log slot decides in well under 100 ticks once a
//! leader is stable, so the replication pipeline runs far below
//! saturation and every outcome is attributable to the election, not to
//! queueing — exactly what a failover SLO measurement needs. The last
//! possible deadline (`stop − 1 + deadline`) lands inside the horizon, so
//! sim runs finish with zero in-flight requests and the records are exact.

use omega_core::OmegaVariant;
use omega_registers::ProcessId;
use omega_scenario::Scenario;
use omega_sim::chaos::{Campaign, ChaosPhase};

use crate::spec::ServiceScenario;
use crate::workload::WorkloadSpec;

/// Number of service nodes in every suite scenario.
const N: usize = 5;
/// The tick every single-failover scenario crashes the sitting leader at.
const CRASH_AT: u64 = 20_000;

/// The suite's shared client population.
fn base_workload() -> WorkloadSpec {
    WorkloadSpec {
        clients: 2_000,
        mean_interarrival: 30_000,
        put_pct: 10,
        key_space: 64,
        deadline: 6_000,
        stall_bound: None,
        start: 2_000,
        stop: 50_000,
    }
}

/// Short scenario-name slug for a variant (the full `variant.name()` is
/// already a field of every record; suite names stay terse).
fn slug(variant: OmegaVariant) -> &'static str {
    match variant {
        OmegaVariant::Alg1 => "alg1",
        OmegaVariant::Alg2 => "alg2",
        OmegaVariant::Mwmr => "mwmr",
        OmegaVariant::StepClock => "stepclock",
    }
}

/// A single-leader-crash scenario over `variant`, the suite's headline
/// shape.
fn failover(variant: OmegaVariant) -> ServiceScenario {
    ServiceScenario::new(
        &format!("failover/{}", slug(variant)),
        Scenario::fault_free(variant, N).crash_leader_at(CRASH_AT),
        base_workload(),
    )
}

/// Every scenario in the suite, in canonical order.
#[must_use]
pub fn all() -> Vec<ServiceScenario> {
    let mut suite = vec![ServiceScenario::new(
        "steady/alg1",
        Scenario::fault_free(OmegaVariant::Alg1, N),
        base_workload(),
    )];
    for variant in [
        OmegaVariant::Alg1,
        OmegaVariant::Alg2,
        OmegaVariant::Mwmr,
        OmegaVariant::StepClock,
    ] {
        suite.push(failover(variant));
    }
    suite.push(ServiceScenario::new(
        "double-failover/alg1",
        Scenario::fault_free(OmegaVariant::Alg1, N)
            .crash_leader_at(16_000)
            .crash_leader_at(34_000),
        base_workload(),
    ));
    suite.push(ServiceScenario::new(
        "surge/alg1",
        Scenario::fault_free(OmegaVariant::Alg1, N).crash_leader_at(CRASH_AT),
        WorkloadSpec {
            mean_interarrival: 12_000,
            put_pct: 5,
            ..base_workload()
        },
    ));
    // The chaos campaign: a register-space partition with every node
    // alive that strands the sitting (AWB-timely) leader p4 in the
    // minority. The connected majority must re-elect across the cut, and
    // while its estimates churn the router's plurality names nodes that
    // don't yet believe they lead — those drained requests are refused,
    // and the SLO must attribute the refusals to the partition
    // (`in_partition_rejected`), not to a crash window.
    suite.push(ServiceScenario::new(
        "chaos/partition-heal",
        Scenario::fault_free(OmegaVariant::Alg1, N)
            .awb(ProcessId::new(4), 1_000, 4)
            .campaign(Campaign::new().phase(ChaosPhase::Partition {
                groups: vec![
                    vec![ProcessId::new(3), ProcessId::new(4)],
                    vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
                ],
                from: 20_000,
                until: 45_000,
            }))
            .horizon(100_000),
        base_workload(),
    ));
    // The hostile flap: the same split as chaos/partition-heal, but
    // oscillating — installed for 3 000 ticks, healed for 3 000, four
    // cycles across [20 000, 44 000) — with the workload's fail-fast
    // stall bound switched on. Every install misroutes requests; the
    // bound turns each would-be stall into a prompt rejection at
    // `arrival + 3 000`, so the record must end with zero stalled
    // requests and zero bound breaches: the ledger drains even while the
    // membership view flaps, which is the drain SLO `BENCH_service.json`
    // gates.
    suite.push(ServiceScenario::new(
        "hostile/flap-service",
        Scenario::fault_free(OmegaVariant::Alg1, N)
            .awb(ProcessId::new(4), 1_000, 4)
            .campaign(Campaign::new().phase(ChaosPhase::Flap {
                groups: vec![
                    vec![ProcessId::new(3), ProcessId::new(4)],
                    vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
                ],
                period: 3_000,
                from: 20_000,
                until: 44_000,
            }))
            .horizon(100_000),
        WorkloadSpec {
            stall_bound: Some(3_000),
            ..base_workload()
        },
    ));
    suite
}

/// The suite's scenario names, in canonical order.
#[must_use]
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

/// Looks a scenario up by exact name.
#[must_use]
pub fn by_name(name: &str) -> Option<ServiceScenario> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_is_stable() {
        let suite = all();
        assert!(suite.len() >= 6, "the bench artifact promises ≥ 6 records");
        let names = names();
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            "names are unique"
        );
        assert!(names.contains(&"failover/alg1".to_string()));
        assert!(names.contains(&"chaos/partition-heal".to_string()));
        assert!(names.contains(&"hostile/flap-service".to_string()));
        for sc in &suite {
            assert_eq!(sc.election.n, N);
            assert!(sc.election.expect_stabilization);
            // Every deadline must land inside the horizon so sim records
            // finish with zero in-flight requests.
            assert!(
                sc.workload.stop - 1 + sc.workload.deadline < sc.election.horizon,
                "{}: deadlines must resolve inside the horizon",
                sc.name
            );
        }
    }

    #[test]
    fn crash_scripts_match_the_names() {
        for sc in all() {
            let expected = match sc.name.split('/').next().unwrap() {
                "steady" => 0,
                "chaos" | "hostile" => 0, // campaigns partition, they don't crash
                "double-failover" => 2,
                _ => 1,
            };
            assert_eq!(sc.election.crashes.len(), expected, "{}", sc.name);
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for name in names() {
            assert_eq!(by_name(&name).unwrap().name, name);
        }
        assert!(by_name("no-such-scenario").is_none());
    }
}
