//! A leader-gated replicated KV service over Ω, measured under open-loop
//! client load.
//!
//! The election crates answer "how fast does Ω stabilize?" in protocol
//! time. This crate asks the question a user of the service would ask:
//! **when the leader dies, how many requests fail, and for how long?**
//! It assembles the existing pieces — an Ω variant ([`omega_core`]), the
//! leader-gated replicated log ([`omega_consensus`]), the declarative
//! election environment ([`omega_scenario`]) — into a small replicated KV
//! service, puts an open-loop client population in front of it
//! (`omega_sim::arrivals`), and reports per-request outcomes:
//!
//! * **committed** — acknowledged (a leader-local get, or a put whose log
//!   slot decided),
//! * **rejected** — actively refused because the contacted node did not
//!   consider itself leader,
//! * **stalled** — unresolved past the client's deadline, the silent
//!   failure mode of a crashed believed-leader.
//!
//! The headline metric is the [`UnavailWindow`]: from each scripted crash
//! to the first post-crash acknowledgment, with the requests rejected or
//! stalled inside it. Latencies go into an HDR-style [`Histogram`]
//! (constant ≤ 6.25 % relative error over the full `u64` range).
//!
//! A [`ServiceScenario`] pairs an election [`Scenario`]
//! (adversary, AWB envelope, timers, crash script, horizon, seed) with a
//! [`WorkloadSpec`]; three drivers realize it:
//!
//! | driver | substrate | determinism |
//! |---|---|---|
//! | [`ServiceSimDriver`] | discrete-event simulator | byte-identical per seed |
//! | [`ServiceCoopDriver`] | cooperative deadline wheel | wall-clock, advisory |
//! | [`ServiceThreadDriver`] | dedicated OS threads | wall-clock, advisory |
//!
//! The committed suite lives in [`registry`]; the `service` bench binary
//! runs it and gates `BENCH_service.json` on the sim records.
//!
//! [`Scenario`]: omega_scenario::Scenario

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod histogram;
pub mod ledger;
pub mod node;
pub mod outcome;
pub mod registry;
pub mod sim_driver;
pub mod spec;
pub mod wall;
pub mod workload;

pub use histogram::Histogram;
pub use ledger::{Ledger, RequestState};
pub use node::ServiceNode;
pub use outcome::{ServiceOutcome, UnavailWindow};
pub use sim_driver::ServiceSimDriver;
pub use spec::ServiceScenario;
pub use wall::{ServiceCoopDriver, ServiceThreadDriver, WallPacing};
pub use workload::{RequestKind, RequestMeta, WorkloadSpec};
