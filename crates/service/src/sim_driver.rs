//! The deterministic-simulator backend for service scenarios.
//!
//! The election environment is realized exactly as the election suite
//! realizes it — the same adversary, AWB envelope, timer models, crash
//! plan, and horizon, all built by [`omega_scenario::Scenario::sim_builder`]
//! — with two kinds of actors on top:
//!
//! * `n` **service-node actors**, each coupling an Ω process with its
//!   [`ServiceNode`] replica loop: every adversary-scheduled step runs one
//!   Ω step and then one service poll fed by that step's fresh estimate.
//! * one **workload actor** at pid `n`, playing the client population: it
//!   issues every due arrival to the router and sweeps client deadlines.
//!   Its `current_leader` reports the *router's* current target, so the
//!   harness's plurality bookkeeping (leader-crash targeting, timeline
//!   stabilization) sees the client-visible view converge alongside the
//!   nodes' own.
//!
//! Everything is a pure function of the scenario: same spec, same seed →
//! byte-identical record (modulo wall-clock, which is reported but never
//! part of the record's gated fields).

use std::sync::Arc;

use omega_consensus::{KvCommand, LogShared};
use omega_core::OmegaProcess;
use omega_registers::{Instrumentation, MemorySpace, ProcessId};
use omega_scenario::CrashSpec;
use omega_sim::{Actor, StepCtx};

use crate::ledger::Ledger;
use crate::node::ServiceNode;
use crate::outcome::ServiceOutcome;
use crate::spec::ServiceScenario;

/// A timeout so large the workload actor's timer never refires inside any
/// realistic horizon (it does all its work in `on_step`).
const NEVER: u64 = 1 << 40;

/// An Ω process and its service replica, stepped as one simulator actor.
struct ServiceNodeActor {
    omega: Box<dyn OmegaProcess>,
    node: ServiceNode,
}

impl Actor for ServiceNodeActor {
    fn on_step(&mut self, ctx: StepCtx) {
        self.omega.t2_step();
        self.node.poll(self.omega.cached_leader(), ctx.now.ticks());
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        self.omega.on_timer_expire()
    }

    fn initial_timeout(&self) -> u64 {
        self.omega.initial_timeout()
    }

    fn current_leader(&self) -> Option<ProcessId> {
        self.omega.cached_leader()
    }
}

/// The client population: issues due arrivals and sweeps deadlines.
struct WorkloadActor {
    ledger: Arc<Ledger>,
    /// Index of the next request (the schedule is time-sorted).
    next: usize,
}

impl Actor for WorkloadActor {
    fn on_step(&mut self, ctx: StepCtx) {
        let now = ctx.now.ticks();
        while self.next < self.ledger.requests() {
            let meta = self.ledger.meta()[self.next];
            if meta.arrival > now {
                break;
            }
            self.ledger.issue(self.next, now);
            self.next += 1;
        }
        self.ledger.sweep(now);
    }

    fn on_timer(&mut self, _ctx: StepCtx) -> u64 {
        NEVER
    }

    fn initial_timeout(&self) -> u64 {
        NEVER
    }

    fn current_leader(&self) -> Option<ProcessId> {
        self.ledger.route_target()
    }
}

/// Realizes a [`ServiceScenario`] on the deterministic simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceSimDriver;

impl ServiceSimDriver {
    /// Runs the scenario to its horizon and assembles the outcome.
    #[must_use]
    pub fn run(&self, scenario: &ServiceScenario) -> ServiceOutcome {
        let election = &scenario.election;
        let n = election.n;

        // Deferred instrumentation is exact single-threaded — the
        // simulator's mode.
        let space = MemorySpace::with_instrumentation(n, Instrumentation::Deferred);
        let omegas = election.variant.build_processes_in(&space);
        let shared = LogShared::<KvCommand>::new(space.clone());
        let ledger = Ledger::new(scenario.requests(), n);

        let mut actors: Vec<Box<dyn Actor>> = omegas
            .into_iter()
            .map(|omega| {
                let pid = omega.pid();
                Box::new(ServiceNodeActor {
                    omega,
                    node: ServiceNode::new(pid, Arc::clone(&ledger), Arc::clone(&shared)),
                }) as Box<dyn Actor>
            })
            .collect();
        actors.push(Box::new(WorkloadActor {
            ledger: Arc::clone(&ledger),
            next: 0,
        }));

        // The environment spec is the election's, widened by one process
        // slot for the workload actor (which touches no shared registers,
        // so the election's schedule semantics are unchanged).
        let mut env = election.clone();
        env.n = n + 1;
        let report = env.sim_builder(actors).memory(space.clone()).run();

        // Final deadline sweep: anything still unresolved whose deadline
        // fell inside the horizon is a stall the pump may not have seen.
        ledger.sweep(election.horizon);

        let crash_ticks: Vec<u64> = election
            .crashes
            .iter()
            .map(|c| match *c {
                CrashSpec::At { tick, .. } | CrashSpec::LeaderAt { tick } => tick,
            })
            .collect();

        ServiceOutcome::assemble(
            "sim",
            scenario,
            &ledger,
            &crash_ticks,
            report.stabilization().is_some(),
            space.stats().total_writes(),
            shared.allocated_slots() as u64,
            report.wall.elapsed_ms(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn steady_scenario_serves_nearly_everything() {
        let sc = registry::by_name("steady/alg1").unwrap();
        let outcome = ServiceSimDriver.run(&sc);
        assert!(outcome.stabilized);
        assert_eq!(outcome.inflight, 0, "all deadlines resolve in-horizon");
        assert_eq!(outcome.windows.len(), 0);
        assert!(
            outcome.committed as f64 >= outcome.requests as f64 * 0.90,
            "steady state should commit the vast majority: {} of {}",
            outcome.committed,
            outcome.requests
        );
        assert!(outcome.log_slots > 0, "puts must replicate through the log");
        assert!(outcome.commit_p50 <= outcome.commit_p95);
        assert!(outcome.commit_p95 <= outcome.commit_max);
    }

    #[test]
    fn partition_campaign_attributes_in_partition_rejections() {
        // Every node stays alive, yet the cut splits leader estimates:
        // requests misrouted across it are refused, and the SLO must book
        // those refusals against the partition, not a crash window.
        let sc = registry::by_name("chaos/partition-heal").unwrap();
        let outcome = ServiceSimDriver.run(&sc);
        assert!(outcome.stabilized, "re-election lands after the heal");
        assert_eq!(outcome.windows.len(), 0, "no crashes, no crash windows");
        assert!(
            outcome.in_partition_rejected > 0,
            "a 25k-tick split must misroute some requests: {outcome:?}"
        );
        assert!(
            outcome.in_partition_rejected <= outcome.rejected,
            "attribution is a subset of all rejections"
        );
        assert!(
            outcome.committed > 0,
            "the connected majority keeps serving through the cut"
        );
        assert!(outcome.json_record().contains("\"in_partition_rejected\":"));
    }

    #[test]
    fn flap_service_drains_under_the_stall_bound() {
        // hostile/flap-service: four install/heal cycles churn the
        // routing view, but the workload's fail-fast bound terminates
        // every would-be stall as a prompt rejection — the ledger ends
        // the run drained, with the drain SLO's counter at zero.
        let sc = registry::by_name("hostile/flap-service").unwrap();
        assert_eq!(sc.workload.stall_bound, Some(3_000));
        let outcome = ServiceSimDriver.run(&sc);
        assert!(outcome.stabilized, "the last heal leaves time to re-elect");
        assert_eq!(outcome.stalled, 0, "every would-be stall fails fast");
        assert_eq!(outcome.inflight, 0, "deadlines resolve inside the horizon");
        assert_eq!(
            outcome.stall_bound_breaches, 0,
            "nothing outlives arrival + bound: {outcome:?}"
        );
        assert!(
            outcome.committed > 0 && outcome.rejected > 0,
            "the flap misroutes some requests while the heals keep serving"
        );
        assert!(
            outcome.in_partition_rejected > 0,
            "install-window rejections are attributed to the flap"
        );
        assert!(outcome.json_record().contains("\"stall_bound_breaches\":0"));
    }

    #[test]
    fn identical_runs_yield_identical_records() {
        let sc = registry::by_name("failover/alg2").unwrap();
        let mut a = ServiceSimDriver.run(&sc);
        let mut b = ServiceSimDriver.run(&sc);
        a.elapsed_ms = 0.0;
        b.elapsed_ms = 0.0;
        assert_eq!(a.json_record(), b.json_record());
    }
}
