//! Declarative open-loop workloads: who asks what, when, and how long
//! they wait.
//!
//! The arrival *process* lives in `omega_sim::arrivals` (per-client seeded
//! streams merged deterministically); this module layers the KV request
//! mix on top — get/put ratio, key population, and the client-side
//! deadline that turns slow requests into *stalled* ones. All randomness
//! flows through each client's own [`SmallRng`](omega_sim::rng::SmallRng)
//! stream, so adding clients or reordering generation never perturbs an
//! existing client's requests.

use omega_sim::arrivals::OpenLoop;

/// What one request asks of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Read a key (served by the leader from its replica, no log slot).
    Get {
        /// Key index into the workload's key population.
        key: u64,
    },
    /// Write a key (replicated through a log slot before acknowledgment).
    Put {
        /// Key index into the workload's key population.
        key: u64,
    },
}

/// One generated request: immutable facts fixed at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// Arrival tick.
    pub arrival: u64,
    /// Tick at which the issuing client gives up waiting.
    pub deadline: u64,
    /// Tick at which the router fails the request fast
    /// (`arrival + stall_bound`), when the workload sets a bound.
    pub fail_fast: Option<u64>,
    /// Index of the issuing client.
    pub client: u64,
    /// The operation.
    pub kind: RequestKind,
}

/// An open-loop KV workload: `clients` independent sources issuing
/// get/put requests at a configured rate, each request carrying a fixed
/// client-side deadline.
///
/// # Examples
///
/// ```
/// use omega_service::WorkloadSpec;
///
/// let spec = WorkloadSpec {
///     clients: 100,
///     mean_interarrival: 5_000,
///     put_pct: 10,
///     key_space: 16,
///     deadline: 2_000,
///     stall_bound: None,
///     start: 1_000,
///     stop: 10_000,
/// };
/// let a = spec.generate(7);
/// let b = spec.generate(7);
/// assert_eq!(a, b, "workloads are pure functions of (spec, seed)");
/// assert!(a.iter().all(|r| r.deadline == r.arrival + 2_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of independent clients.
    pub clients: u64,
    /// Mean gap between one client's consecutive requests, in ticks.
    pub mean_interarrival: u64,
    /// Percentage of requests that are puts (0–100); the rest are gets.
    pub put_pct: u32,
    /// Number of distinct keys, drawn uniformly.
    pub key_space: u64,
    /// Client patience: a request unresolved `deadline` ticks after its
    /// arrival counts as stalled. Constant per workload, so requests stay
    /// deadline-sorted and the stall sweep is a single cursor.
    pub deadline: u64,
    /// Router-side fail-fast bound: a request still unresolved
    /// `stall_bound` ticks after its arrival is terminated `Rejected` by
    /// the sweep instead of hanging to the client deadline. `None`
    /// disables the bound. Constant per workload (like `deadline`), so
    /// bound ticks stay sorted and the fail-fast sweep is a single cursor.
    pub stall_bound: Option<u64>,
    /// First tick of the arrival window.
    pub start: u64,
    /// End of the arrival window (exclusive).
    pub stop: u64,
}

impl WorkloadSpec {
    /// Generates the merged, time-sorted request schedule for `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<RequestMeta> {
        let open = OpenLoop {
            clients: self.clients,
            mean_interarrival: self.mean_interarrival,
            start: self.start,
            stop: self.stop,
        };
        let keys = self.key_space.max(1);
        let put_pct = u64::from(self.put_pct.min(100));
        open.generate(seed, |_, rng| {
            let key = rng.gen_range(0..=keys - 1);
            let put = rng.gen_range(1..=100) <= put_pct;
            if put {
                RequestKind::Put { key }
            } else {
                RequestKind::Get { key }
            }
        })
        .into_iter()
        .map(|a| RequestMeta {
            arrival: a.at,
            deadline: a.at.saturating_add(self.deadline),
            fail_fast: self.stall_bound.map(|b| a.at.saturating_add(b)),
            client: a.client,
            kind: a.payload,
        })
        .collect()
    }

    /// The store key name for a key index — one canonical spelling, so
    /// every layer (submission, replay, inspection) agrees on it.
    #[must_use]
    pub fn key_name(key: u64) -> String {
        format!("k{key:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            clients: 200,
            mean_interarrival: 10_000,
            put_pct: 20,
            key_space: 8,
            deadline: 3_000,
            stall_bound: None,
            start: 500,
            stop: 20_000,
        }
    }

    #[test]
    fn mix_and_bounds_follow_the_spec() {
        let requests = spec().generate(11);
        assert!(!requests.is_empty());
        let puts = requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Put { .. }))
            .count();
        let ratio = puts as f64 / requests.len() as f64;
        assert!((0.12..=0.28).contains(&ratio), "put ratio {ratio}");
        for r in &requests {
            assert!((500..20_000).contains(&r.arrival));
            assert_eq!(r.deadline, r.arrival + 3_000);
            let (RequestKind::Get { key } | RequestKind::Put { key }) = r.kind;
            assert!(key < 8);
        }
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "schedule is time-sorted (hence deadline-sorted)"
        );
    }

    #[test]
    fn stall_bound_stamps_fail_fast_ticks() {
        let bounded = WorkloadSpec {
            stall_bound: Some(1_500),
            ..spec()
        };
        let requests = bounded.generate(11);
        assert!(!requests.is_empty());
        for r in &requests {
            assert_eq!(r.fail_fast, Some(r.arrival + 1_500));
        }
        assert!(
            spec().generate(11).iter().all(|r| r.fail_fast.is_none()),
            "no bound, no fail-fast tick"
        );
    }

    #[test]
    fn different_seeds_reshape_the_workload() {
        assert_ne!(spec().generate(1), spec().generate(2));
    }

    #[test]
    fn key_names_are_stable() {
        assert_eq!(WorkloadSpec::key_name(7), "k007");
        assert_eq!(WorkloadSpec::key_name(123), "k123");
    }
}
