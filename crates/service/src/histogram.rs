//! An HDR-style latency histogram: logarithmic octaves with linear
//! sub-buckets.
//!
//! Request latencies span four-plus orders of magnitude (a get served in
//! one poll vs. a put queued behind a failover), so a linear histogram
//! either truncates the tail or wastes memory. The classic
//! high-dynamic-range layout solves this with one bucket array indexed by
//! `(octave of the value, top SUB_BUCKET_BITS bits below the leading
//! one)`: constant relative error (here ≤ 2⁻⁴ ≈ 6.25 %), O(1) recording,
//! and a few kilobytes of memory for the full `u64` range. No clocks, no
//! allocation after construction, fully deterministic — the same sequence
//! of `record` calls always yields the same quantiles, which is what lets
//! the service bench gate its sim records byte-for-byte.

/// Linear resolution within one octave: 2⁴ = 16 sub-buckets, i.e. values
/// are resolved to ~6.25 % of their magnitude.
const SUB_BUCKET_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Bucket count covering all of `u64`: the linear region below
/// `SUB_BUCKETS`, plus 16 sub-buckets for each of the 60 remaining
/// octaves.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// A fixed-size HDR-style histogram over `u64` values (e.g. latencies in
/// ticks).
///
/// # Examples
///
/// ```
/// use omega_service::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.value_at_quantile(0.50);
/// // Constant relative error: the reported quantile is within 6.25 %.
/// assert!((470..=540).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket a value lands in.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let sub = (value >> shift) as usize - SUB_BUCKETS;
    SUB_BUCKETS + (shift as usize) * SUB_BUCKETS + sub
}

/// The largest value a bucket represents (its upper bound, so reported
/// quantiles never understate a latency).
fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let shift = ((index - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let low = (SUB_BUCKETS as u64 + sub) << shift;
    low + ((1u64 << shift) - 1)
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[index_of(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper bound of
    /// the first bucket whose cumulative count reaches `⌈q · count⌉`,
    /// capped at the exact recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in 1..=16 {
            let want = q as u64 - 1;
            assert_eq!(h.value_at_quantile(q as f64 / 16.0), want);
        }
    }

    #[test]
    fn relative_error_is_bounded_across_octaves() {
        for &v in &[17u64, 100, 999, 4_096, 65_537, 1 << 30, (1 << 40) + 123] {
            let mut h = Histogram::new();
            h.record(v);
            let got = h.value_at_quantile(1.0);
            assert!(got >= v, "quantiles never understate: {got} < {v}");
            let err = (got - v) as f64 / v as f64;
            assert!(err <= 1.0 / 16.0, "relative error {err} too large at {v}");
        }
    }

    #[test]
    fn quantiles_are_monotone_and_capped_at_max() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantiles must be monotone");
            last = v;
        }
        assert_eq!(h.value_at_quantile(1.0), 100_000, "p100 is the exact max");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn index_and_bound_agree_everywhere() {
        // Every bucket's upper bound must land back in that bucket, and
        // indices must be monotone in the value.
        let mut probes: Vec<u64> = Vec::new();
        for exp in 0..63u32 {
            probes.extend([1u64 << exp, (1u64 << exp) + 1, (1u64 << exp) / 2 * 3]);
        }
        probes.sort_unstable();
        let mut last_index = 0;
        for v in probes {
            let index = index_of(v);
            assert!(index >= last_index, "monotone indices at {v}");
            assert!(bucket_high(index) >= v);
            assert_eq!(index_of(bucket_high(index)), index);
            last_index = index;
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }
}
