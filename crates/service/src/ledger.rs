//! The request ledger: every request's lifecycle, the per-node inboxes,
//! and the client-side routing view.
//!
//! One `Ledger` is shared by the workload pump (which issues requests and
//! sweeps deadlines) and every service node (which drains its inbox and
//! resolves requests). It is the *client side* of the system: routing
//! consults only the leader estimates the nodes publish — exactly what a
//! client library could observe — so a crashed believed-leader keeps
//! attracting requests until the estimates flip, and those requests stall
//! past their deadline. That stall is the failover SLO this subsystem
//! exists to measure, not an accounting artifact.
//!
//! All mutation goes through interior mutability (a mutex over the states,
//! one mutex per inbox, atomics for the estimates), so the same type works
//! single-threaded under the simulator and concurrently under the
//! wall-clock runtimes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use omega_registers::sync::Mutex;
use omega_registers::ProcessId;

use crate::workload::RequestMeta;

/// Where a request is in its lifecycle. Terminal states carry the tick at
/// which the client learned the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestState {
    /// Not yet resolved: queued at the router, in an inbox, or in the
    /// replication pipeline.
    Pending,
    /// Acknowledged: a get served by the leader, or a put whose log slot
    /// committed.
    Committed {
        /// Acknowledgment tick.
        at: u64,
    },
    /// Actively refused: routed to a node that did not consider itself
    /// leader (or unroutable because no estimate existed).
    Rejected {
        /// Refusal tick.
        at: u64,
    },
    /// The client's deadline passed with the request unresolved — the
    /// user-visible face of an unavailability window.
    Stalled {
        /// The request's deadline (when the client gave up).
        at: u64,
    },
}

struct LedgerInner {
    states: Vec<RequestState>,
    /// First request whose deadline has not been swept yet. Requests are
    /// deadline-sorted (constant deadline offset over a time-sorted
    /// schedule), so the sweep is amortized O(1) per request.
    sweep_cursor: usize,
    /// First request whose fail-fast bound has not been swept yet; the
    /// same constant-offset argument keeps bound ticks sorted.
    bound_cursor: usize,
}

/// Shared request state: metadata, lifecycle states, per-node inboxes,
/// and published leader estimates.
pub struct Ledger {
    meta: Vec<RequestMeta>,
    inner: Mutex<LedgerInner>,
    inboxes: Vec<Mutex<VecDeque<usize>>>,
    /// Last estimate each node published; `-1` encodes "none yet".
    estimates: Vec<AtomicI64>,
}

impl Ledger {
    /// A fresh ledger over a generated request schedule, for an `n`-node
    /// service.
    #[must_use]
    pub fn new(meta: Vec<RequestMeta>, n: usize) -> Arc<Self> {
        let states = vec![RequestState::Pending; meta.len()];
        Arc::new(Ledger {
            meta,
            inner: Mutex::new(LedgerInner {
                states,
                sweep_cursor: 0,
                bound_cursor: 0,
            }),
            inboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            estimates: (0..n).map(|_| AtomicI64::new(-1)).collect(),
        })
    }

    /// The immutable request schedule.
    #[must_use]
    pub fn meta(&self) -> &[RequestMeta] {
        &self.meta
    }

    /// Total number of requests in the schedule.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.meta.len()
    }

    /// Publishes `node`'s current leader estimate for the router to read.
    pub fn publish(&self, node: ProcessId, estimate: Option<ProcessId>) {
        let encoded = estimate.map_or(-1, |p| p.index() as i64);
        self.estimates[node.index()].store(encoded, Ordering::Relaxed);
    }

    /// The node the router currently sends requests to: the plurality of
    /// published estimates (ties break toward the smaller pid, matching
    /// the cluster's crash targeting), or `None` when no node has
    /// published an estimate yet.
    ///
    /// Stale estimates from crashed nodes are *not* filtered: the router
    /// plays a client, and clients cannot see crashes — only the surviving
    /// nodes' flipped estimates eventually outvote the stale slot.
    #[must_use]
    pub fn route_target(&self) -> Option<ProcessId> {
        let mut counts: Vec<(i64, usize)> = Vec::new();
        for slot in &self.estimates {
            let estimate = slot.load(Ordering::Relaxed);
            if estimate < 0 {
                continue;
            }
            match counts.iter_mut().find(|(p, _)| *p == estimate) {
                Some((_, c)) => *c += 1,
                None => counts.push((estimate, 1)),
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(p, c)| (c, std::cmp::Reverse(p)))
            .map(|(p, _)| ProcessId::new(p as usize))
    }

    /// Issues request `id`: routes it to the believed leader's inbox, or
    /// rejects it immediately when no estimate exists. No-op if the
    /// request already resolved (e.g. swept as stalled before a lagging
    /// pump issued it).
    pub fn issue(&self, id: usize, now: u64) {
        let target = self.route_target();
        {
            let inner = self.inner.lock();
            if inner.states[id] != RequestState::Pending {
                return;
            }
        }
        match target {
            Some(node) => self.inboxes[node.index()].lock().push_back(id),
            None => self.resolve(id, RequestState::Rejected { at: now }),
        }
    }

    /// Takes everything queued at `node`'s inbox, in arrival order.
    #[must_use]
    pub fn drain(&self, node: ProcessId) -> Vec<usize> {
        self.inboxes[node.index()].lock().drain(..).collect()
    }

    /// Marks `id` acknowledged at `now` (first terminal state wins).
    pub fn complete(&self, id: usize, now: u64) {
        self.resolve(id, RequestState::Committed { at: now });
    }

    /// Marks `id` refused at `now` (first terminal state wins).
    pub fn reject(&self, id: usize, now: u64) {
        self.resolve(id, RequestState::Rejected { at: now });
    }

    fn resolve(&self, id: usize, state: RequestState) {
        let mut inner = self.inner.lock();
        if inner.states[id] == RequestState::Pending {
            inner.states[id] = state;
        }
    }

    /// Stalls every still-pending request whose deadline is at or before
    /// `now`, and fail-fast-rejects every still-pending request whose
    /// stall bound passed first. The ticks recorded are the request's own
    /// *deadline* / *bound* (the moment the client gave up, or the router
    /// gave up on its behalf), not the sweep time, so outcomes are
    /// independent of sweep cadence.
    pub fn sweep(&self, now: u64) {
        let mut inner = self.inner.lock();
        // Fail-fast pass first: when one sweep covers both ticks, the
        // rejection wins wherever the bound is at or under the client's
        // patience. A bound looser than the deadline is moot for that
        // request — the stall sweep owns it.
        while inner.bound_cursor < self.meta.len() {
            let id = inner.bound_cursor;
            match self.meta[id].fail_fast {
                Some(at) if at <= now => {
                    if inner.states[id] == RequestState::Pending && at <= self.meta[id].deadline {
                        inner.states[id] = RequestState::Rejected { at };
                    }
                    inner.bound_cursor += 1;
                }
                Some(_) => break,
                None => inner.bound_cursor += 1,
            }
        }
        while inner.sweep_cursor < self.meta.len() {
            let id = inner.sweep_cursor;
            let deadline = self.meta[id].deadline;
            if deadline > now {
                break;
            }
            if inner.states[id] == RequestState::Pending {
                inner.states[id] = RequestState::Stalled { at: deadline };
            }
            inner.sweep_cursor += 1;
        }
    }

    /// A snapshot of every request's state, index-aligned with
    /// [`meta`](Self::meta).
    #[must_use]
    pub fn states(&self) -> Vec<RequestState> {
        self.inner.lock().states.clone()
    }
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger")
            .field("requests", &self.meta.len())
            .field("nodes", &self.inboxes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::RequestKind;

    fn meta(arrivals: &[u64], deadline: u64) -> Vec<RequestMeta> {
        arrivals
            .iter()
            .map(|&arrival| RequestMeta {
                arrival,
                deadline: arrival + deadline,
                fail_fast: None,
                client: 0,
                kind: RequestKind::Get { key: 0 },
            })
            .collect()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn routing_follows_the_plurality_of_estimates() {
        let ledger = Ledger::new(meta(&[10, 20], 100), 3);
        assert_eq!(ledger.route_target(), None, "no estimates yet");
        ledger.publish(p(0), Some(p(2)));
        ledger.publish(p(1), Some(p(2)));
        ledger.publish(p(2), Some(p(1)));
        assert_eq!(ledger.route_target(), Some(p(2)));
        // Ties break toward the smaller pid.
        ledger.publish(p(0), Some(p(1)));
        ledger.publish(p(2), None);
        assert_eq!(ledger.route_target(), Some(p(1)));
    }

    #[test]
    fn issue_routes_or_rejects_and_drain_empties() {
        let ledger = Ledger::new(meta(&[10, 20], 100), 2);
        ledger.issue(0, 10);
        assert_eq!(
            ledger.states()[0],
            RequestState::Rejected { at: 10 },
            "unroutable requests are refused on the spot"
        );
        ledger.publish(p(1), Some(p(1)));
        ledger.issue(1, 20);
        assert_eq!(ledger.drain(p(1)), vec![1]);
        assert!(ledger.drain(p(1)).is_empty());
        assert_eq!(ledger.states()[1], RequestState::Pending);
    }

    #[test]
    fn first_terminal_state_wins() {
        let ledger = Ledger::new(meta(&[0], 50), 1);
        ledger.sweep(50);
        assert_eq!(ledger.states()[0], RequestState::Stalled { at: 50 });
        ledger.complete(0, 60);
        assert_eq!(
            ledger.states()[0],
            RequestState::Stalled { at: 50 },
            "a commit after the client gave up does not rewrite history"
        );
    }

    #[test]
    fn sweep_stalls_by_deadline_not_sweep_time() {
        let ledger = Ledger::new(meta(&[0, 100, 200], 50), 1);
        ledger.complete(1, 120);
        ledger.sweep(1_000);
        let states = ledger.states();
        assert_eq!(states[0], RequestState::Stalled { at: 50 });
        assert_eq!(states[1], RequestState::Committed { at: 120 });
        assert_eq!(states[2], RequestState::Stalled { at: 250 });
    }

    #[test]
    fn fail_fast_rejects_at_the_bound_not_the_sweep() {
        let mut meta = meta(&[0, 100, 200], 1_000);
        for m in &mut meta {
            m.fail_fast = Some(m.arrival + 300);
        }
        let ledger = Ledger::new(meta, 1);
        ledger.complete(1, 150);
        ledger.sweep(5_000);
        let states = ledger.states();
        assert_eq!(states[0], RequestState::Rejected { at: 300 });
        assert_eq!(states[1], RequestState::Committed { at: 150 });
        assert_eq!(states[2], RequestState::Rejected { at: 500 });
    }

    #[test]
    fn a_bound_looser_than_the_deadline_is_moot() {
        let mut meta = meta(&[0], 50);
        meta[0].fail_fast = Some(200);
        let ledger = Ledger::new(meta, 1);
        ledger.sweep(1_000);
        assert_eq!(
            ledger.states()[0],
            RequestState::Stalled { at: 50 },
            "the client's patience ran out before the router's"
        );
    }

    #[test]
    fn sweep_cursor_never_stalls_future_deadlines() {
        let ledger = Ledger::new(meta(&[0, 100], 50), 1);
        ledger.sweep(60);
        let states = ledger.states();
        assert_eq!(states[0], RequestState::Stalled { at: 50 });
        assert_eq!(states[1], RequestState::Pending);
    }
}
